(** The guardrail runtime engine: installs compiled monitors against a
    simulated kernel, drives their triggers, evaluates rules and
    executes corrective actions.

    Semantics:
    - A monitor {e checks} its rule whenever any of its triggers
      fires. The property is violated when the rule evaluates falsy.
    - On violation, the monitor's actions run in order, subject to a
      per-monitor cooldown (no re-firing within [cooldown] of the
      previous firing). Checks themselves are never suppressed.
    - RETRAIN is asynchronous (the paper envisions offline training):
      the policy's retrain callback runs after [retrain_delay] of
      simulated time, and retrains of the same policy are rate
      limited to one per [retrain_min_interval] — the paper's defence
      against malicious processes forcing constant retraining.
    - SAVE writes go through the shared feature store and can wake
      ON_CHANGE monitors. Cascades are bounded by [max_cascade_depth];
      deeper cascades are dropped and counted, and each monitor's
      violated/healthy transitions feed an oscillation detector
      ([oscillation_flips] transitions within [oscillation_window]
      raise an alert) — the feedback-loop failure mode of §6.
    - Every rule evaluation charges its estimated cost to the
      monitor's overhead account ({!Stats}); nothing else in the
      simulated kernel slows down, so overhead is an observable, not
      a perturbation. *)

type config = {
  cooldown : Gr_util.Time_ns.t;  (** default 0: act on every violation *)
  retrain_delay : Gr_util.Time_ns.t;  (** default 50ms *)
  retrain_min_interval : Gr_util.Time_ns.t;  (** default 1s *)
  oscillation_window : Gr_util.Time_ns.t;  (** default 10s *)
  oscillation_flips : int;  (** default 6 *)
  max_cascade_depth : int;  (** default 8 *)
  auto_damp : bool;
      (** default false. When set, each oscillation alert doubles the
          flapping monitor's action cooldown (starting from 100ms if
          it was zero) — automatic negative feedback on guardrail
          feedback loops (§6). Detection and REPORTs continue; only
          corrective actions are slowed. *)
}

val default_config : config

type t

val create :
  kernel:Gr_kernel.Kernel.t ->
  store:Feature_store.t ->
  ?config:config ->
  ?tracer:Gr_trace.Tracer.t ->
  ?engine:Vm.tier ->
  unit ->
  t
(** Without [?tracer], the engine creates a private one (trace events
    disabled). Either way the per-monitor metrics registry records
    every check and the REPORT channel — the bounded ring-buffer sink
    behind {!violations} — is always live.

    [?engine] picks the default execution tier monitors are
    specialized onto at install ({!Vm.tier}; default [Jit]). All
    tiers are bit-identical in results, accounting, store counters
    and trace events, so the choice is a pure performance knob. *)

val tracer : t -> Gr_trace.Tracer.t
val metrics : t -> Gr_trace.Metrics.t
(** Per-monitor telemetry: check/violation/firing counts and the
    check-latency distribution. *)

type handle

val install :
  ?engine:Vm.tier -> ?version:int -> t -> Gr_compiler.Monitor.t -> (handle, string list) result
(** Verifies the monitor (installation is the trust boundary, exactly
    as for eBPF program load), specializes its rule and SAVE programs
    onto the requested tier (default: the engine's), and arms its
    triggers. [version] stamps the monitor with the spec version it
    came from when the install goes through the versioned lifecycle
    ({!Gr_core.Lifecycle} / grc serve); it changes no runtime
    behavior and no trace bytes. *)

val tier : handle -> Vm.tier
(** The tier the monitor's rule actually executes on — [Reg] when a
    [Jit] request fell back because the rule reads cross-shard keys. *)

val default_tier : t -> Vm.tier

val uninstall : t -> handle -> unit
(** Cancels timers, unsubscribes hooks, releases the monitor's
    streaming-aggregate demand refcounts ({e exactly} once — shapes
    shared with still-installed monitors keep streaming), and drops
    the monitor from the engine's table so a long-running serving
    engine doesn't accumulate dead records across push/rollback
    cycles. Idempotent; the handle stays valid for {!Stats.get}. *)

val monitor_name : handle -> string

val version : handle -> int option
(** The spec version stamped at install, if the monitor came in
    through the versioned lifecycle. *)

val installed : handle -> bool

val installed_count : t -> int
(** Monitors currently in the engine's table (uninstalls shrink it). *)

val set_deprioritize_handler : t -> (cls:string -> weight:int -> unit) -> unit
val set_kill_handler : t -> (cls:string -> unit) -> unit
(** Wire DEPRIORITIZE/KILL to the scheduler (or any resource
    manager). Unset handlers log a warning when invoked. *)

val check_now : t -> handle -> bool
(** Forces one rule evaluation (outside any trigger); [true] if the
    property held. Used by tests and the CLI. *)

val dispatch_on_change : t -> string -> unit
(** Run the ON_CHANGE triggers indexed under this exact key, as if the
    engine's own store had saved it. The fleet layer uses this to
    replay global-tier saves into every node engine — a node's
    ON_CHANGE(GLOBAL(key)) fires no matter which node wrote the key.
    Saves through the engine's store dispatch automatically. *)

module Stats : sig
  type s = {
    checks : int;
    violations : int;  (** checks whose rule was falsy *)
    action_firings : int;  (** violation instances whose actions ran *)
    retrains_requested : int;
    retrains_suppressed : int;  (** dropped by the rate limiter *)
    overhead_ns : float;  (** accumulated estimated check cost *)
    oscillation_alerts : int;
    cascade_drops : int;
    effective_cooldown : Gr_util.Time_ns.t;
        (** the monitor's current cooldown, after any auto-damping *)
  }

  val get : t -> handle -> s
  val total_overhead_ns : t -> float
  val total_checks : t -> int
end

type violation_record = {
  monitor : string;
  at : Gr_util.Time_ns.t;
  message : string;  (** REPORT message, or ["<violation>"] if the
                         monitor has no REPORT action *)
  snapshot : (string * float) list;  (** keys named by REPORT *)
}

val violations : t -> violation_record list
(** Chronological log (REPORT actions and implicit records). A view
    over the tracer's report sink: REPORTs are structured trace
    events on a bounded ring buffer (oldest-first, newest dropped and
    counted on overflow — the eBPF-ringbuf discipline). *)

val oscillating_monitors : t -> string list
(** Monitors whose flip rate exceeded the threshold at least once. *)

val pp_report : Format.formatter -> t -> unit
(** Operations report: one row per installed monitor (checks,
    violations, firings, retrains, overhead, state), followed by the
    most recent violations. What an operator would read after an
    incident. *)
