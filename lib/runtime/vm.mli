(** Interpreter for verified monitor programs.

    Arithmetic is total: division by zero yields 0 (the same choice
    eBPF makes), so a verified program cannot trap. Booleans are
    encoded as 0/1; any non-zero value is truthy for [&&]/[||]/[!].

    Each run reports the dynamic cost in estimated nanoseconds —
    instruction costs from {!Gr_compiler.Verify.est_inst_cost_ns}
    plus a per-sample surcharge for window scans — which the engine
    accumulates as monitor overhead (the currency of the P5 property
    and the overhead ablation). *)

type result = {
  value : float;
  insts_executed : int;
  samples_scanned : int;
  est_cost_ns : float;
}

val run : store:Feature_store.t -> slots:string array -> Gr_compiler.Ir.program -> result
(** Precondition: the program passed {!Gr_compiler.Verify.verify}
    against these slots. *)

val truthy : float -> bool
