(** Interpreter for verified monitor programs.

    Arithmetic is total: division by zero yields 0 (the same choice
    eBPF makes), so a verified program cannot trap. Booleans are
    encoded as 0/1; any non-zero value is truthy for [&&]/[||]/[!].

    Each run reports the dynamic cost in estimated nanoseconds —
    instruction costs from {!Gr_compiler.Ir.inst_cost_ns}
    plus a per-sample surcharge for window work — which the engine
    accumulates as monitor overhead (the currency of the P5 property
    and the overhead ablation). Aggregates go through
    {!Feature_store.aggregate_result}: a registered demand is charged
    only the samples it expired on this check (O(1) amortized), a
    naive fallback the whole window population. *)

type result = {
  value : float;
  insts_executed : int;
  samples_scanned : int;
  est_cost_ns : float;
}

val static_cost_ns : Gr_compiler.Ir.program -> float
(** {!Gr_compiler.Ir.static_cost_ns} — fixed at compile time.
    Callers that execute a program repeatedly compute this once and
    pass it to {!run} so the hot path only adds the dynamic
    (sample-scan) part. *)

val run :
  ?static_cost_ns:float ->
  store:Feature_store.t ->
  slots:string array ->
  Gr_compiler.Ir.program ->
  result
(** Precondition: the program passed {!Gr_compiler.Verify.verify}
    against these slots, and [?static_cost_ns], when given, is
    {!static_cost_ns} of this very program (computed per run
    otherwise). *)

val truthy : float -> bool
