(** Interpreter for verified monitor programs.

    Arithmetic is total: division by zero yields 0 (the same choice
    eBPF makes), so a verified program cannot trap. Booleans are
    encoded as 0/1; any non-zero value is truthy for [&&]/[||]/[!].

    Each run reports the dynamic cost in estimated nanoseconds —
    instruction costs from {!Gr_compiler.Ir.inst_cost_ns}
    plus a per-sample surcharge for window work — which the engine
    accumulates as monitor overhead (the currency of the P5 property
    and the overhead ablation). Aggregates go through
    {!Feature_store.aggregate_result}: a registered demand is charged
    only the samples it expired on this check (O(1) amortized), a
    naive fallback the whole window population. *)

type result = {
  value : float;
  insts_executed : int;
  samples_scanned : int;
  est_cost_ns : float;
}

(** {1 Execution tiers}

    The same verified program can execute on three tiers:
    - [Tree]: the reference tree-walking interpreter ({!run});
    - [Reg]: the register/superinstruction rewrite ({!compile} +
      {!run_compiled}) — always available;
    - [Jit]: the closure template JIT ({!Jit}) — falls back to [Reg]
      when the program touches cross-shard (fleet-merged) keys.

    All tiers produce bit-identical {!result}s, store counter effects
    and trace events; the cross-tier differential rig in
    test/test_fuzz.ml pins that equivalence. *)

type tier = Tree | Reg | Jit

val tier_of_string : string -> tier option
(** Parses ["tree"|"reg"|"jit"] — the CLI's [--engine] values. *)

val tier_to_string : tier -> string

val all_tiers : tier list
(** [[Tree; Reg; Jit]], in increasing specialization order. *)

val static_cost_ns : Gr_compiler.Ir.program -> float
(** {!Gr_compiler.Ir.static_cost_ns} — fixed at compile time.
    Callers that execute a program repeatedly compute this once and
    pass it to {!run} so the hot path only adds the dynamic
    (sample-scan) part. *)

val run :
  ?static_cost_ns:float ->
  store:Feature_store.t ->
  slots:string array ->
  Gr_compiler.Ir.program ->
  result
(** Precondition: the program passed {!Gr_compiler.Verify.verify}
    against these slots, and [?static_cost_ns], when given, is
    {!static_cost_ns} of this very program (computed per run
    otherwise). *)

val truthy : float -> bool

val of_bool : bool -> float
(** 1. for [true], 0. for [false] — the VM's boolean encoding. *)

val is_cmp : Gr_dsl.Ast.binop -> bool
(** True for the six comparison operators — the fusable shapes. *)

val sample_scan_cost_ns : float
(** Per-sample surcharge (ns) every tier charges for window work. *)

val apply_unop : Gr_dsl.Ast.unop -> float -> float

val apply_binop : Gr_dsl.Ast.binop -> float -> float -> float
(** Operator semantics shared by the register and JIT tiers; in exact
    (bit-for-bit) agreement with {!run}'s inline matches. Division by
    zero yields 0. *)

(** {1 Register / superinstruction tier} *)

type compiled
(** A program specialized at install time: constants pre-executed into
    a persistent register frame, slot indices resolved to keys, and
    load-cmp / agg-cmp pairs fused into superinstructions. *)

val compile : store:Feature_store.t -> slots:string array -> Gr_compiler.Ir.program -> compiled
(** Same precondition as {!run}: the program passed
    {!Gr_compiler.Verify.verify} against these slots. *)

val run_compiled : compiled -> result
(** Bit-identical to {!run} on the same store state: same [value],
    [insts_executed] (the {e original} instruction count),
    [samples_scanned], [est_cost_ns], store counters and trace
    instants. Not reentrant: a compiled program owns its frame. *)
