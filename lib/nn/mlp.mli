(** Small multi-layer perceptron, trained with minibatch SGD.

    This is the "light neural network" substrate behind the learned
    policies (the LinnOS-style latency classifier uses a three-layer
    net, as in the original paper). It is deliberately dependency-free
    and deterministic: weight initialisation draws from an explicit
    {!Gr_util.Rng.t}.

    Inference cost matters to the reproduction — the P5 property
    (decision overhead) charges simulated time per forward pass — so
    {!forward_count} and {!flops_per_forward} are exposed for the
    overhead accounting. *)

type activation = Relu | Sigmoid | Tanh | Linear

type t

val create :
  rng:Gr_util.Rng.t ->
  layers:int list ->
  ?hidden:activation ->
  ?output:activation ->
  unit ->
  t
(** [create ~rng ~layers:[n_in; h1; ...; n_out] ()] builds a network
    with He-scaled random weights. [hidden] defaults to [Relu],
    [output] to [Sigmoid]. Requires at least two layer sizes, all
    positive. *)

val input_dim : t -> int
val output_dim : t -> int

val forward : t -> float array -> float array
(** Runs inference. The input array length must equal [input_dim].
    Returns a fresh array of length [output_dim]. *)

val predict_class : t -> float array -> int
(** Index of the largest output; for a 1-output sigmoid net, returns
    0/1 by thresholding at 0.5. *)

val train_batch : t -> lr:float -> (float array * float array) array -> float
(** One SGD step on a minibatch of (input, target) pairs using mean
    squared error on the post-activation outputs. Returns the mean
    batch loss before the update. *)

val train :
  t ->
  rng:Gr_util.Rng.t ->
  epochs:int ->
  batch_size:int ->
  lr:float ->
  (float array * float array) array ->
  float
(** Shuffled minibatch training over the dataset; returns the final
    epoch's mean loss. *)

val forward_count : t -> int
(** Number of forward passes executed since creation. *)

val flops_per_forward : t -> int
(** Approximate multiply-accumulate count of one inference, used to
    derive a simulated inference latency. *)

val copy : t -> t
(** Deep copy; used to snapshot a model before simulated retraining. *)

val scale_first_layer : t -> float -> unit
(** Multiplies the first layer's weights (not biases) in place.
    Scaling up amplifies the network's sensitivity to its inputs —
    the fault-injection knob behind the P2 robustness experiments. *)
