open Gr_util

type t = {
  means : float array;
  stddevs : float array;
  columns : float array array; (* training data by column, for envelopes *)
}

let fit rows =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Scaler.fit: empty dataset";
  let d = Array.length rows.(0) in
  let columns = Array.init d (fun c -> Array.map (fun row -> row.(c)) rows) in
  let means = Array.map Stats.mean columns in
  let stddevs = Array.map Stats.stddev columns in
  { means; stddevs; columns }

let dim t = Array.length t.means

let transform t x =
  if Array.length x <> dim t then invalid_arg "Scaler.transform: dimension mismatch";
  Array.mapi
    (fun i v -> if t.stddevs.(i) > 0. then (v -. t.means.(i)) /. t.stddevs.(i) else v)
    x

let transform_all t rows = Array.map (transform t) rows
let mean t i = t.means.(i)
let stddev t i = t.stddevs.(i)
let envelope t ~quantiles col = Stats.quantile_envelope t.columns.(col) quantiles
