open Gr_util

type activation = Relu | Sigmoid | Tanh | Linear

type layer = {
  weights : float array array; (* [out][in] *)
  biases : float array;
  act : activation;
}

type t = { layers : layer array; mutable forwards : int }

let apply_act act x =
  match act with
  | Relu -> if x > 0. then x else 0.
  | Sigmoid -> 1. /. (1. +. exp (-.x))
  | Tanh -> tanh x
  | Linear -> x

(* Derivative expressed in terms of the activation output [y]. *)
let act_deriv act y =
  match act with
  | Relu -> if y > 0. then 1. else 0.
  | Sigmoid -> y *. (1. -. y)
  | Tanh -> 1. -. (y *. y)
  | Linear -> 1.

let create ~rng ~layers ?(hidden = Relu) ?(output = Sigmoid) () =
  (match layers with
  | [] | [ _ ] -> invalid_arg "Mlp.create: need at least input and output sizes"
  | sizes -> if List.exists (fun n -> n <= 0) sizes then invalid_arg "Mlp.create: layer sizes must be positive");
  let sizes = Array.of_list layers in
  let n_layers = Array.length sizes - 1 in
  let make_layer i =
    let n_in = sizes.(i) and n_out = sizes.(i + 1) in
    let scale = sqrt (2.0 /. float_of_int n_in) in
    {
      weights =
        Array.init n_out (fun _ ->
            Array.init n_in (fun _ -> Rng.gaussian rng ~mu:0. ~sigma:scale));
      biases = Array.make n_out 0.;
      act = (if i = n_layers - 1 then output else hidden);
    }
  in
  { layers = Array.init n_layers make_layer; forwards = 0 }

let input_dim t = Array.length t.layers.(0).weights.(0)
let output_dim t = Array.length t.layers.(Array.length t.layers - 1).biases

let layer_forward layer input =
  let n_out = Array.length layer.biases in
  Array.init n_out (fun o ->
      let w = layer.weights.(o) in
      let acc = ref layer.biases.(o) in
      for i = 0 to Array.length w - 1 do
        acc := !acc +. (w.(i) *. input.(i))
      done;
      apply_act layer.act !acc)

let forward t input =
  if Array.length input <> input_dim t then
    invalid_arg "Mlp.forward: input dimension mismatch";
  t.forwards <- t.forwards + 1;
  Array.fold_left (fun x layer -> layer_forward layer x) input t.layers

let predict_class t input =
  let out = forward t input in
  if Array.length out = 1 then (if out.(0) >= 0.5 then 1 else 0)
  else begin
    let best = ref 0 in
    Array.iteri (fun i v -> if v > out.(!best) then best := i) out;
    !best
  end

(* Forward pass retaining every layer's activations, for backprop. *)
let forward_trace t input =
  let acts = Array.make (Array.length t.layers + 1) input in
  Array.iteri (fun i layer -> acts.(i + 1) <- layer_forward layer acts.(i)) t.layers;
  acts

let train_batch t ~lr batch =
  if Array.length batch = 0 then 0.
  else begin
    let n_layers = Array.length t.layers in
    (* Accumulate gradients across the batch, then apply one step. *)
    let grad_w =
      Array.map (fun l -> Array.map (fun row -> Array.make (Array.length row) 0.) l.weights) t.layers
    in
    let grad_b = Array.map (fun l -> Array.make (Array.length l.biases) 0.) t.layers in
    let total_loss = ref 0. in
    Array.iter
      (fun (x, y) ->
        let acts = forward_trace t x in
        let out = acts.(n_layers) in
        (* MSE loss; delta at the output layer. *)
        let delta = ref (Array.mapi (fun i o ->
            let err = o -. y.(i) in
            total_loss := !total_loss +. (err *. err);
            2. *. err *. act_deriv t.layers.(n_layers - 1).act o) out)
        in
        for l = n_layers - 1 downto 0 do
          let layer = t.layers.(l) in
          let below = acts.(l) in
          let d = !delta in
          for o = 0 to Array.length d - 1 do
            grad_b.(l).(o) <- grad_b.(l).(o) +. d.(o);
            let gw = grad_w.(l).(o) and w = layer.weights.(o) in
            for i = 0 to Array.length w - 1 do
              gw.(i) <- gw.(i) +. (d.(o) *. below.(i))
            done
          done;
          if l > 0 then begin
            let n_in = Array.length layer.weights.(0) in
            let next = Array.make n_in 0. in
            for i = 0 to n_in - 1 do
              let acc = ref 0. in
              for o = 0 to Array.length d - 1 do
                acc := !acc +. (layer.weights.(o).(i) *. d.(o))
              done;
              next.(i) <- !acc *. act_deriv t.layers.(l - 1).act below.(i)
            done;
            delta := next
          end
        done)
      batch;
    let scale = lr /. float_of_int (Array.length batch) in
    Array.iteri
      (fun l layer ->
        Array.iteri
          (fun o row ->
            layer.biases.(o) <- layer.biases.(o) -. (scale *. grad_b.(l).(o));
            Array.iteri (fun i g -> row.(i) <- row.(i) -. (scale *. g)) grad_w.(l).(o))
          layer.weights)
      t.layers;
    !total_loss /. float_of_int (Array.length batch)
  end

let train t ~rng ~epochs ~batch_size ~lr data =
  if Array.length data = 0 then 0.
  else begin
    let data = Array.copy data in
    let last_loss = ref 0. in
    for _epoch = 1 to epochs do
      Rng.shuffle rng data;
      let n = Array.length data in
      let losses = ref 0. and batches = ref 0 in
      let i = ref 0 in
      while !i < n do
        let len = min batch_size (n - !i) in
        losses := !losses +. train_batch t ~lr (Array.sub data !i len);
        incr batches;
        i := !i + len
      done;
      last_loss := !losses /. float_of_int (max 1 !batches)
    done;
    !last_loss
  end

let forward_count t = t.forwards

let flops_per_forward t =
  Array.fold_left
    (fun acc l -> acc + (Array.length l.biases * (Array.length l.weights.(0) + 1)))
    0 t.layers

let scale_first_layer t factor =
  Array.iter
    (fun row -> Array.iteri (fun i w -> row.(i) <- w *. factor) row)
    t.layers.(0).weights

let copy t =
  {
    layers =
      Array.map
        (fun l ->
          { l with weights = Array.map Array.copy l.weights; biases = Array.copy l.biases })
        t.layers;
    forwards = t.forwards;
  }
