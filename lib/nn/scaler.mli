(** Per-feature z-score normalisation.

    Learned policies fit a scaler on their training features and apply
    it at inference time. The scaler also exposes the training-time
    distribution summary (mean/stddev/quantile envelope per feature),
    which is exactly what the P1 in-distribution guardrail compares
    live inputs against. *)

type t

val fit : float array array -> t
(** [fit rows] computes per-column mean and stddev over the dataset
    (rows of equal length). Requires a non-empty dataset. *)

val dim : t -> int

val transform : t -> float array -> float array
(** Z-scores one feature vector; columns with zero variance pass
    through unchanged. *)

val transform_all : t -> float array array -> float array array

val mean : t -> int -> float
val stddev : t -> int -> float

val envelope : t -> quantiles:float array -> int -> float array
(** [envelope t ~quantiles col] is the training-set quantile envelope
    of column [col]; requires the scaler was built with {!fit}. *)
