open Gr_util

let duration_ns (t : Time_ns.t) = string_of_int t

let guardrail ~name ~triggers ~rules ~actions =
  let block label items =
    Printf.sprintf "  %s: {\n%s\n  }" label
      (String.concat "\n" (List.map (fun item -> "    " ^ item) items))
  in
  Printf.sprintf "guardrail %s {\n%s\n%s\n%s\n}\n" name
    (block "trigger" triggers)
    (block "rule" rules)
    (block "action" actions)

let timer ~check_every = Printf.sprintf "TIMER(0, %s)" (duration_ns check_every)

module P1_in_distribution = struct
  let envelope values ?(quantile = 0.5) ?(slack = 0.5) () =
    let q = Stats.quantile values quantile in
    let iqr = Stats.quantile values 0.75 -. Stats.quantile values 0.25 in
    let spread = Float.max 1e-9 (iqr *. slack) in
    (q -. spread, q +. spread)

  let bounded_stat ~name ~feature_key ~stat_expr ~lo ~hi ~window ~check_every ~actions =
    guardrail ~name
      ~triggers:[ timer ~check_every ]
      ~rules:
        [
          (* An empty window (no recent inputs) is healthy, not
             drifted: COUNT guards the comparison. *)
          Printf.sprintf "COUNT(%s, %s) == 0 || (%s >= %g && %s <= %g)" feature_key
            (duration_ns window) stat_expr lo stat_expr hi;
        ]
      ~actions

  let source ~name ~feature_key ~lo ~hi ?(quantile = 0.5) ~window ~check_every ~actions () =
    let stat_expr =
      Printf.sprintf "QUANTILE(%s, %g, %s)" feature_key quantile (duration_ns window)
    in
    bounded_stat ~name ~feature_key ~stat_expr ~lo ~hi ~window ~check_every ~actions

  let source_mean ~name ~feature_key ~lo ~hi ~window ~check_every ~actions () =
    let stat_expr = Printf.sprintf "AVG(%s, %s)" feature_key (duration_ns window) in
    bounded_stat ~name ~feature_key ~stat_expr ~lo ~hi ~window ~check_every ~actions

  let instrument_ks d ~feature_key ~training ~window ~every ~out =
    Guardrails.Deployment.derive_periodic d ~key:out ~every (fun () ->
        let live =
          Gr_runtime.Feature_store.window_samples
            (Guardrails.Deployment.store d)
            ~key:feature_key
            ~window_ns:(float_of_int window)
        in
        if Array.length live = 0 then 0. else Stats.ks_distance live training)

  let source_ks ~name ~ks_key ~bound ~check_every ~actions () =
    guardrail ~name
      ~triggers:[ timer ~check_every ]
      ~rules:[ Printf.sprintf "LOAD(%s) <= %g" ks_key bound ]
      ~actions
end

module P2_robustness = struct
  let source ~name ~sensitivity_key ~bound ~window ~check_every ~actions () =
    guardrail ~name
      ~triggers:[ timer ~check_every ]
      ~rules:[ Printf.sprintf "MAX(%s, %s) <= %g" sensitivity_key (duration_ns window) bound ]
      ~actions

  let instrument_cc d controller ~rng ~key ~every =
    let rng = Rng.fork rng in
    Guardrails.Deployment.derive_periodic d ~key ~every (fun () ->
        Gr_policy.Cc_controller.sensitivity_probe controller ~rng ~rtt_ms:40. ~loss:0.02 ())
end

module P3_output_bounds = struct
  let source ~name ~hook ~key ~lo ~hi ~actions () =
    guardrail ~name
      ~triggers:[ Printf.sprintf "FUNCTION(%S)" hook ]
      ~rules:[ Printf.sprintf "LOAD(%s) >= %g && LOAD(%s) <= %g" key lo key hi ]
      ~actions
end

module P4_decision_quality = struct
  let source ~name ~policy_key ~baseline_key ~margin ~window ~check_every ~actions () =
    let w = duration_ns window in
    guardrail ~name
      ~triggers:[ timer ~check_every ]
      ~rules:
        [
          (* Compare only once both legs have data in the window. *)
          Printf.sprintf "COUNT(%s, %s) == 0 || COUNT(%s, %s) == 0 || AVG(%s, %s) >= AVG(%s, %s) - %g"
            policy_key w baseline_key w policy_key w baseline_key w margin;
        ]
      ~actions

  let shadow_cache d ~capacity ~baseline ~hit_key =
    let kernel = Guardrails.Deployment.kernel d in
    let shadow_hooks = Gr_kernel.Hooks.create () in
    let shadow = Gr_kernel.Cache.create ~hooks:shadow_hooks ~capacity in
    Gr_kernel.Policy_slot.install (Gr_kernel.Cache.slot shadow)
      ~name:baseline.Gr_kernel.Cache.policy_name baseline;
    ignore
      (Gr_kernel.Hooks.subscribe kernel.hooks "cache:access" (fun args ->
           match List.assoc_opt "key" args with
           | None -> ()
           | Some key ->
             let hit = Gr_kernel.Cache.access shadow ~key:(int_of_float key) in
             Guardrails.Deployment.save d hit_key (if hit then 1. else 0.))
        : Gr_kernel.Hooks.subscription)

  let shadow_readahead d ~cache_pages ~baseline ~hit_key =
    let kernel = Guardrails.Deployment.kernel d in
    let shadow_hooks = Gr_kernel.Hooks.create () in
    let shadow = Gr_kernel.Fs.create ~hooks:shadow_hooks ~cache_pages () in
    Gr_kernel.Policy_slot.install (Gr_kernel.Fs.slot shadow)
      ~name:baseline.Gr_kernel.Fs.policy_name baseline;
    ignore
      (Gr_kernel.Hooks.subscribe kernel.hooks "fs:read" (fun args ->
           match List.assoc_opt "offset" args with
           | None -> ()
           | Some offset ->
             let hit = Gr_kernel.Fs.read shadow ~offset:(int_of_float offset) in
             Guardrails.Deployment.save d hit_key (if hit then 1. else 0.))
        : Gr_kernel.Hooks.subscription)
end

module P5_overhead = struct
  let source ~name ~cost_key ~budget_ns ~window ~check_every ~actions () =
    guardrail ~name
      ~triggers:[ timer ~check_every ]
      ~rules:
        [ Printf.sprintf "AVG(%s, %s) <= %g" cost_key (duration_ns window) budget_ns ]
      ~actions

  let wrap_blk_policy d ~key ~cost_ns (policy : Gr_kernel.Blk.policy) =
    {
      policy with
      decide =
        (fun features ->
          Guardrails.Deployment.save d key cost_ns;
          policy.decide features);
    }
end

module P6_fairness = struct
  let source ~name ?(max_wait_key = "sched_max_wait_ms") ?(jain_key = "sched_jain")
      ~max_wait_ms ~min_jain ~check_every ~actions () =
    guardrail ~name
      ~triggers:[ timer ~check_every ]
      ~rules:
        [
          Printf.sprintf "LOAD(%s) <= %g" max_wait_key max_wait_ms;
          Printf.sprintf "LOAD(%s) >= %g" jain_key min_jain;
        ]
      ~actions
end
