(** The guardrail property library: generators for the paper's P1-P6
    taxonomy (Figure 1, left table).

    Each generator emits guardrail {e source text} — the properties
    are expressed in the same language a kernel developer would
    write, and go through the full parse / typecheck / compile /
    verify pipeline when installed. Where a property needs kernel
    signals that no subsystem publishes by default, the module also
    provides the instrumentation glue.

    Action lists are raw action syntax, e.g.
    [{|REPORT("drift", input_q50)|}; {|RETRAIN("linnos")|}] — the
    generators splice them into the [action] section verbatim. *)

val duration_ns : Gr_util.Time_ns.t -> string
(** Renders a duration as DSL source (plain nanoseconds). *)

module P1_in_distribution : sig
  (** Inputs stay in-distribution: the live windowed quantile of each
      monitored feature must stay inside an envelope computed from
      the training set. *)

  val envelope : float array -> ?quantile:float -> ?slack:float -> unit -> float * float
  (** [(lo, hi)] for the training values: the [quantile]
      (default 0.5) must live within the training [quantile]'s
      position widened by [slack] (default 0.5) times the training
      IQR. *)

  val source :
    name:string ->
    feature_key:string ->
    lo:float ->
    hi:float ->
    ?quantile:float ->
    window:Gr_util.Time_ns.t ->
    check_every:Gr_util.Time_ns.t ->
    actions:string list ->
    unit ->
    string

  val source_mean :
    name:string ->
    feature_key:string ->
    lo:float ->
    hi:float ->
    window:Gr_util.Time_ns.t ->
    check_every:Gr_util.Time_ns.t ->
    actions:string list ->
    unit ->
    string
  (** Variant bounding the windowed {e mean} instead of a quantile —
      the right form for 0/1 event markers such as "this input was
      never seen in training" (novelty fraction). *)

  val instrument_ks :
    Guardrails.Deployment.t ->
    feature_key:string ->
    training:float array ->
    window:Gr_util.Time_ns.t ->
    every:Gr_util.Time_ns.t ->
    out:string ->
    unit
  (** Whole-distribution drift: periodically computes the two-sample
      Kolmogorov-Smirnov statistic between the feature's live window
      and the training sample, saving it under [out] (0 when the
      window is empty). Pair with {!source_ks}. *)

  val source_ks :
    name:string ->
    ks_key:string ->
    bound:float ->
    check_every:Gr_util.Time_ns.t ->
    actions:string list ->
    unit ->
    string
  (** Bounds the saved KS statistic; typical bounds are 0.2-0.4 (KS
      is in [0,1], 0 = identical distributions). *)
end

module P2_robustness : sig
  (** Similar inputs yield similar outputs: an empirical sensitivity
      metric (published by a prober such as
      {!Gr_policy.Cc_controller.sensitivity_probe}) stays bounded. *)

  val source :
    name:string ->
    sensitivity_key:string ->
    bound:float ->
    window:Gr_util.Time_ns.t ->
    check_every:Gr_util.Time_ns.t ->
    actions:string list ->
    unit ->
    string

  val instrument_cc :
    Guardrails.Deployment.t ->
    Gr_policy.Cc_controller.t ->
    rng:Gr_util.Rng.t ->
    key:string ->
    every:Gr_util.Time_ns.t ->
    unit
  (** Periodically probes the controller at a reference operating
      point and saves the sensitivity estimate. *)
end

module P3_output_bounds : sig
  (** Outputs are legal: a value published at a hook stays inside
      [lo, hi]. Checked with a FUNCTION trigger so every decision is
      inspected. *)

  val source :
    name:string ->
    hook:string ->
    key:string ->
    lo:float ->
    hi:float ->
    actions:string list ->
    unit ->
    string
end

module P4_decision_quality : sig
  (** The learned policy beats its baseline: the windowed average of
      the policy's quality metric must not fall more than [margin]
      below the shadow baseline's. *)

  val source :
    name:string ->
    policy_key:string ->
    baseline_key:string ->
    margin:float ->
    window:Gr_util.Time_ns.t ->
    check_every:Gr_util.Time_ns.t ->
    actions:string list ->
    unit ->
    string

  val shadow_cache :
    Guardrails.Deployment.t ->
    capacity:int ->
    baseline:Gr_kernel.Cache.policy ->
    hit_key:string ->
    unit
  (** Runs a shadow cache (own hook registry, same capacity) fed by
      every ["cache:access"] of the live cache, saving its hit/miss
      stream under [hit_key] — the baseline leg of the P4 rule. *)

  val shadow_readahead :
    Guardrails.Deployment.t ->
    cache_pages:int ->
    baseline:Gr_kernel.Fs.policy ->
    hit_key:string ->
    unit
  (** Same pattern for the file read path: a shadow page cache under
      the baseline readahead policy replays every ["fs:read"] offset
      and saves its hit/miss stream under [hit_key]. *)
end

module P5_overhead : sig
  (** Inference cost is bounded: the windowed average of per-decision
      inference cost must stay below the budget. *)

  val source :
    name:string ->
    cost_key:string ->
    budget_ns:float ->
    window:Gr_util.Time_ns.t ->
    check_every:Gr_util.Time_ns.t ->
    actions:string list ->
    unit ->
    string

  val wrap_blk_policy :
    Guardrails.Deployment.t ->
    key:string ->
    cost_ns:float ->
    Gr_kernel.Blk.policy ->
    Gr_kernel.Blk.policy
  (** Saves [cost_ns] under [key] on every decide call. *)
end

module P6_fairness : sig
  (** Liveness and fairness: no ready task starves beyond
      [max_wait_ms], and per-class CPU shares keep a Jain index of at
      least [min_jain]. Requires
      {!Guardrails.Deployment.wire_scheduler}. *)

  val source :
    name:string ->
    ?max_wait_key:string ->
    ?jain_key:string ->
    max_wait_ms:float ->
    min_jain:float ->
    check_every:Gr_util.Time_ns.t ->
    actions:string list ->
    unit ->
    string
end
