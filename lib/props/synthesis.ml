open Gr_util

type input_feature = {
  feature_key : string;
  training_values : float array;
  quantile : float;
  slack : float;
}

let input ?(quantile = 0.5) ?(slack = 3.0) ~key training_values =
  { feature_key = key; training_values; quantile; slack }

type profile = {
  policy : string;
  inputs : input_feature list;
  reward_key : string option;
  baseline_key : string option;
  quality_margin : float;
  cost_key : string option;
  cost_budget_ns : float;
  window : Time_ns.t;
  check_every : Time_ns.t;
}

let profile ~policy ?(inputs = []) ?reward_key ?baseline_key ?(quality_margin = 0.02) ?cost_key
    ?(cost_budget_ns = 5000.) ?(window = Time_ns.sec 1) ?(check_every = Time_ns.ms 100) () =
  {
    policy;
    inputs;
    reward_key;
    baseline_key;
    quality_margin;
    cost_key;
    cost_budget_ns;
    window;
    check_every;
  }

let input_guardrail p feature =
  let lo, hi =
    Props.P1_in_distribution.envelope feature.training_values ~quantile:feature.quantile
      ~slack:feature.slack ()
  in
  Props.P1_in_distribution.source
    ~name:(Printf.sprintf "%s-input-%s" p.policy feature.feature_key)
    ~feature_key:feature.feature_key ~lo ~hi ~quantile:feature.quantile ~window:p.window
    ~check_every:p.check_every
    ~actions:
      [
        Printf.sprintf {|REPORT("input %s drifted out of the training distribution", %s)|}
          feature.feature_key feature.feature_key;
        Printf.sprintf {|RETRAIN(%S)|} p.policy;
      ]
    ()

let quality_guardrail p ~reward_key ~baseline_key =
  Props.P4_decision_quality.source
    ~name:(Printf.sprintf "%s-quality" p.policy)
    ~policy_key:reward_key ~baseline_key ~margin:p.quality_margin ~window:p.window
    ~check_every:p.check_every
    ~actions:
      [
        Printf.sprintf {|REPORT("reward fell below the baseline", %s, %s)|} reward_key
          baseline_key;
        Printf.sprintf {|REPLACE(%S)|} p.policy;
      ]
    ()

let overhead_guardrail p ~cost_key =
  Props.P5_overhead.source
    ~name:(Printf.sprintf "%s-overhead" p.policy)
    ~cost_key ~budget_ns:p.cost_budget_ns ~window:p.window ~check_every:p.check_every
    ~actions:
      [
        Printf.sprintf {|REPORT("inference cost over budget", %s)|} cost_key;
        Printf.sprintf {|REPLACE(%S)|} p.policy;
      ]
    ()

let pieces p =
  List.map (fun f -> (Printf.sprintf "%s-input-%s" p.policy f.feature_key, input_guardrail p f)) p.inputs
  @ (match (p.reward_key, p.baseline_key) with
    | Some reward_key, Some baseline_key ->
      [ (Printf.sprintf "%s-quality" p.policy, quality_guardrail p ~reward_key ~baseline_key) ]
    | _ -> [])
  @
  match p.cost_key with
  | Some cost_key -> [ (Printf.sprintf "%s-overhead" p.policy, overhead_guardrail p ~cost_key) ]
  | None -> []

let synthesize p = String.concat "\n" (List.map snd (pieces p))
let synthesized_names p = List.map fst (pieces p)
