(** Automatic guardrail synthesis from a learned-policy profile.

    §3.3: "In the interface, the conditions verified by properties
    must be specified. For learned policies, many of these can be
    determined automatically, e.g., the performance metric to track
    can be extracted from the reward function."

    A {!profile} is the metadata a learned policy carries anyway —
    its monitored input features (with their training-set values),
    its reward metric, a baseline to compare against, its
    per-decision cost — and {!synthesize} turns it into a standard
    guardrail set:

    - one P1 in-distribution guardrail per input feature, with the
      envelope computed from the training values, reporting and
      retraining on drift;
    - a P4 decision-quality guardrail comparing the reward metric to
      the baseline's, replacing the policy when it loses;
    - a P5 overhead guardrail bounding the per-decision cost,
      replacing the policy when inference stops paying for itself.

    The emitted source goes through the ordinary compile/verify
    pipeline, so synthesized guardrails are exactly as trustworthy as
    hand-written ones. *)

type input_feature = {
  feature_key : string;  (** store key the instrumentation saves *)
  training_values : float array;  (** the feature's training sample *)
  quantile : float;  (** which quantile to monitor (e.g. 0.5) *)
  slack : float;  (** envelope widening factor *)
}

val input : ?quantile:float -> ?slack:float -> key:string -> float array -> input_feature
(** [quantile] defaults to 0.5, [slack] to 3.0. *)

type profile = {
  policy : string;  (** name in the kernel's policy registry *)
  inputs : input_feature list;
  reward_key : string option;  (** quality metric, higher is better *)
  baseline_key : string option;  (** shadow baseline's metric *)
  quality_margin : float;
  cost_key : string option;  (** per-decision cost samples (ns) *)
  cost_budget_ns : float;
  window : Gr_util.Time_ns.t;
  check_every : Gr_util.Time_ns.t;
}

val profile :
  policy:string ->
  ?inputs:input_feature list ->
  ?reward_key:string ->
  ?baseline_key:string ->
  ?quality_margin:float ->
  ?cost_key:string ->
  ?cost_budget_ns:float ->
  ?window:Gr_util.Time_ns.t ->
  ?check_every:Gr_util.Time_ns.t ->
  unit ->
  profile
(** Defaults: margin 0.02, budget 5000ns, window 1s, check 100ms. *)

val synthesize : profile -> string
(** Guardrail source text; guardrail names are derived from the
    policy name ([<policy>-input-<key>], [<policy>-quality],
    [<policy>-overhead]). *)

val synthesized_names : profile -> string list
(** The guardrail names {!synthesize} will emit, in order. *)
