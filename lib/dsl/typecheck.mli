(** Static checks on parsed guardrail specifications.

    The language has two types, numbers and booleans. The checker
    enforces:
    - every rule is boolean;
    - arithmetic operates on numbers, [&&]/[||]/[!] on booleans;
    - [==]/[!=] compare like types; [<] etc. compare numbers;
    - aggregation windows are constant, positive numbers;
    - QUANTILE's q is a constant in (0, 1);
    - TIMER arguments are constant, non-negative numbers with a
      positive interval (and stop > start when given);
    - DEPRIORITIZE weight is a constant positive number;
    - SAVE values are numbers or booleans (booleans are stored
      as 0/1);
    - guardrail names are unique within a spec.

    Constancy is checked after constant folding, so
    [TIMER(0, 2 * 500ms)] is legal. *)

type ty = Num | Bool

type error = { pos : Ast.pos; message : string }

val pp_error : Format.formatter -> error -> unit

val infer_expr : Ast.expr Ast.located -> (ty, error) result
(** Type of a standalone expression. *)

val const_fold : Ast.expr Ast.located -> Ast.expr Ast.located
(** Bottom-up constant folding and algebraic simplification
    ([x*1 = x], [x+0 = x], [true && e = e], [!!e = e], ...). Folding
    never changes evaluation semantics: division by a constant zero is
    left in place (it evaluates to the VM's well-defined 0 at run
    time, see {!Gr_runtime}). *)

val const_value : Ast.expr Ast.located -> float option
(** [Some v] if the expression folds to the number [v]. *)

val check_spec : Ast.spec -> (unit, error list) result
(** All errors in the spec, not just the first. *)
