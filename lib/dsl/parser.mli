(** Recursive-descent parser for guardrail specifications.

    Accepts the concrete syntax of Listing 2:
    {v
    guardrail low-false-submit {
      trigger: {
        TIMER(start_time, 1e9)   // periodically check every 1s
      },
      rule: {
        LOAD(false_submit_rate) <= 0.05
      },
      action: {
        SAVE(ml_enabled, false)
      }
    }
    v}
    Hyphenated guardrail names are supported (as in the paper);
    sections may appear in any order and may repeat; items inside a
    section are separated by commas, semicolons or newlines; trailing
    commas after a section are optional. The identifier [start_time]
    is sugar for 0 (check from deployment). *)

val parse : string -> (Ast.spec, Ast.pos * string) result

val parse_exn : string -> Ast.spec
(** @raise Lexer.Error on any syntax error. *)

val parse_expr : string -> (Ast.expr Ast.located, Ast.pos * string) result
(** Parses a standalone expression; used by tests and the CLI. *)
