(** Hand-written lexer for guardrail specifications.

    Supports [//] line comments and [/* ... */] block comments, string
    literals in double quotes, and numeric literals with an optional
    duration suffix ([ns], [us], [ms], [s]) that scales the value to
    nanoseconds — so [TIMER(0, 1s)] and [TIMER(0, 1e9)] are the same
    trigger. *)

type token =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | SEMI
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | ANDAND
  | OROR
  | BANG
  | TRUE
  | FALSE
  | GUARDRAIL
  | TRIGGER
  | RULE
  | ACTION
  | EOF

exception Error of Ast.pos * string

val tokenize : string -> (token * Ast.pos) list
(** The result always ends with an [EOF] token.
    @raise Error on an unrecognised character or unterminated
    string/comment. *)

val token_to_string : token -> string
