open Ast

type ty = Num | Bool

type error = { pos : pos; message : string }

let pp_error fmt { pos; message } = Format.fprintf fmt "%a: %s" pp_pos pos message

let ty_name = function Num -> "a number" | Bool -> "a boolean"

exception Type_error of error

let fail pos message = raise (Type_error { pos; message })

let rec infer ({ node; pos } : expr located) =
  match node with
  | Number _ -> Num
  | Ast.Bool _ -> Bool
  | Load _ -> Num
  | Unop (Neg, e) ->
    expect Num e;
    Num
  | Unop (Abs, e) ->
    expect Num e;
    Num
  | Unop (Not, e) ->
    expect Bool e;
    Bool
  | Binop ((Add | Sub | Mul | Div), lhs, rhs) ->
    expect Num lhs;
    expect Num rhs;
    Num
  | Binop ((Lt | Le | Gt | Ge), lhs, rhs) ->
    expect Num lhs;
    expect Num rhs;
    Bool
  | Binop ((Eq | Ne), lhs, rhs) ->
    let tl = infer lhs and tr = infer rhs in
    if tl <> tr then
      fail pos
        (Printf.sprintf "cannot compare %s with %s" (ty_name tl) (ty_name tr));
    Bool
  | Binop ((And | Or), lhs, rhs) ->
    expect Bool lhs;
    expect Bool rhs;
    Bool
  | Agg { fn; key = _; window; param } ->
    expect Num window;
    (match (fn, param) with
    | Quantile, Some q -> expect Num q
    | Quantile, None -> fail pos "QUANTILE requires a quantile argument"
    | _, Some { pos; _ } -> fail pos "only QUANTILE takes a parameter"
    | _, None -> ());
    Num

and expect ty e =
  let actual = infer e in
  if actual <> ty then
    fail e.pos (Printf.sprintf "expected %s but this is %s" (ty_name ty) (ty_name actual))

let infer_expr e = match infer e with ty -> Ok ty | exception Type_error err -> Error err

let rec const_fold ({ node; pos } as e : expr located) =
  match node with
  | Number _ | Ast.Bool _ | Load _ -> e
  | Unop (op, sub) -> (
    let sub = const_fold sub in
    match (op, sub.node) with
    | Neg, Number f -> at pos (Number (-.f))
    | Abs, Number f -> at pos (Number (Float.abs f))
    | Not, Ast.Bool b -> at pos (Ast.Bool (not b))
    | Not, Unop (Not, inner) -> inner
    | _ -> at pos (Unop (op, sub)))
  | Binop (op, lhs, rhs) -> (
    let lhs = const_fold lhs and rhs = const_fold rhs in
    match (op, lhs.node, rhs.node) with
    | Add, Number a, Number b -> at pos (Number (a +. b))
    | Sub, Number a, Number b -> at pos (Number (a -. b))
    | Mul, Number a, Number b -> at pos (Number (a *. b))
    (* Division by a constant zero is preserved: the VM defines x/0 =
       0, and folding here would have to replicate that semantics. *)
    | Div, Number a, Number b when b <> 0. -> at pos (Number (a /. b))
    | Lt, Number a, Number b -> at pos (Ast.Bool (a < b))
    | Le, Number a, Number b -> at pos (Ast.Bool (a <= b))
    | Gt, Number a, Number b -> at pos (Ast.Bool (a > b))
    | Ge, Number a, Number b -> at pos (Ast.Bool (a >= b))
    | Eq, Number a, Number b -> at pos (Ast.Bool (a = b))
    | Ne, Number a, Number b -> at pos (Ast.Bool (a <> b))
    | Eq, Ast.Bool a, Ast.Bool b -> at pos (Ast.Bool (a = b))
    | Ne, Ast.Bool a, Ast.Bool b -> at pos (Ast.Bool (a <> b))
    | And, Ast.Bool a, Ast.Bool b -> at pos (Ast.Bool (a && b))
    | Or, Ast.Bool a, Ast.Bool b -> at pos (Ast.Bool (a || b))
    (* Algebraic identities; all sub-expressions here are pure. *)
    | Add, Number 0., _ -> rhs
    | Add, _, Number 0. -> lhs
    | Sub, _, Number 0. -> lhs
    | Mul, Number 1., _ -> rhs
    | Mul, _, Number 1. -> lhs
    | Div, _, Number 1. -> lhs
    | And, Ast.Bool true, _ -> rhs
    | And, _, Ast.Bool true -> lhs
    | And, Ast.Bool false, _ -> at pos (Ast.Bool false)
    | Or, Ast.Bool false, _ -> rhs
    | Or, _, Ast.Bool false -> lhs
    | Or, Ast.Bool true, _ -> at pos (Ast.Bool true)
    | _ -> at pos (Binop (op, lhs, rhs)))
  | Agg call ->
    at pos
      (Agg
         {
           call with
           window = const_fold call.window;
           param = Option.map const_fold call.param;
         })

let const_value e =
  match (const_fold e).node with Number f -> Some f | _ -> None

let check_const_num ~what ~pred ~pred_desc (e : expr located) =
  match infer_expr e with
  | Error err -> [ err ]
  | Ok Bool -> [ { pos = e.pos; message = what ^ " must be a number" } ]
  | Ok Num -> (
    match const_value e with
    | None -> [ { pos = e.pos; message = what ^ " must be a constant" } ]
    | Some v ->
      if pred v then []
      else [ { pos = e.pos; message = Printf.sprintf "%s must be %s (got %g)" what pred_desc v } ])

let rec check_agg_args (e : expr located) =
  match e.node with
  | Number _ | Ast.Bool _ | Load _ -> []
  | Unop (_, sub) -> check_agg_args sub
  | Binop (_, lhs, rhs) -> check_agg_args lhs @ check_agg_args rhs
  | Agg { fn; window; param; _ } ->
    check_const_num ~what:"aggregation window" ~pred:(fun v -> v > 0.)
      ~pred_desc:"positive" window
    @ (match (fn, param) with
      | Quantile, Some q ->
        check_const_num ~what:"quantile" ~pred:(fun v -> v > 0. && v < 1.)
          ~pred_desc:"in (0, 1)" q
      | _ -> [])
    @ check_agg_args window
    @ (match param with Some p -> check_agg_args p | None -> [])

let check_rule (e : expr located) =
  (match infer_expr e with
  | Error err -> [ err ]
  | Ok Bool -> []
  | Ok Num -> [ { pos = e.pos; message = "a rule must be a boolean expression" } ])
  @ check_agg_args e

let check_trigger ({ node; pos = _ } : trigger located) =
  match node with
  | Function _ | On_change _ -> []
  | Timer { start; interval; stop } -> (
    check_const_num ~what:"TIMER start" ~pred:(fun v -> v >= 0.) ~pred_desc:"non-negative"
      start
    @ check_const_num ~what:"TIMER interval" ~pred:(fun v -> v > 0.) ~pred_desc:"positive"
        interval
    @
    match stop with
    | None -> []
    | Some stop_e -> (
      check_const_num ~what:"TIMER stop" ~pred:(fun v -> v > 0.) ~pred_desc:"positive" stop_e
      @
      match (const_value start, const_value stop_e) with
      | Some s, Some p when p <= s ->
        [ { pos = stop_e.pos; message = "TIMER stop must be after start" } ]
      | _ -> []))

let check_action ({ node; pos = _ } : action located) =
  match node with
  | Report _ | Replace _ | Restore _ | Retrain _ | Kill _ -> []
  | Deprioritize { weight; _ } ->
    check_const_num ~what:"DEPRIORITIZE weight" ~pred:(fun v -> v >= 1.)
      ~pred_desc:"at least 1" weight
  | Save { value; _ } ->
    (match infer_expr value with Error err -> [ err ] | Ok _ -> [])
    @ check_agg_args value

let check_guardrail g =
  List.concat_map check_trigger g.triggers
  @ List.concat_map check_rule g.rules
  @ List.concat_map check_action g.actions

let check_spec spec =
  let dup_errors =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun g ->
        if Hashtbl.mem seen g.name then
          Some
            { pos = g.pos; message = Printf.sprintf "duplicate guardrail name %S" g.name }
        else begin
          Hashtbl.add seen g.name ();
          None
        end)
      spec
  in
  match dup_errors @ List.concat_map check_guardrail spec with
  | [] -> Ok ()
  | errs -> Error errs
