(** Abstract syntax of the guardrail specification language.

    The grammar follows Listing 1 of the paper:
    {v
    <Guardrail> ::= <Property> (<Action>)+
    <Property>  ::= (<Trigger>)+ (<Rule>)+
    <Trigger>   ::= TIMER | FUNCTION
    <Rule>      ::= <Expression>
    <Action>    ::= REPORT | REPLACE | RETRAIN | DEPRIORITIZE
    v}
    extended with the ON_CHANGE dependency trigger (the §6 "check only
    when relevant state changes" direction), the SAVE action used by
    Listing 2, RESTORE/KILL action variants, and windowed aggregation
    builtins over the feature store (AVG, RATE, COUNT, SUM, MIN, MAX,
    STDDEV, QUANTILE).

    All numeric literals are floats; duration literals ([10ms], [1s],
    [500us], [250ns]) are sugar for their value in nanoseconds. *)

type pos = { line : int; col : int }

val pp_pos : Format.formatter -> pos -> unit

type 'a located = { node : 'a; pos : pos }

val at : pos -> 'a -> 'a located

type unop = Neg | Not | Abs

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type agg = Avg | Rate | Count | Sum | Min | Max | Stddev | Quantile | Delta

type expr =
  | Number of float
  | Bool of bool
  | Load of string  (** [LOAD(key)]: latest value of a store key *)
  | Unop of unop * expr located
  | Binop of binop * expr located * expr located
  | Agg of agg_call

and agg_call = {
  fn : agg;
  key : string;
  window : expr located;  (** nanoseconds; must be a positive constant *)
  param : expr located option;  (** QUANTILE's q; others take none *)
}

type trigger =
  | Timer of {
      start : expr located;  (** first check time, ns *)
      interval : expr located;  (** period, ns *)
      stop : expr located option;
    }
  | Function of string  (** hook name, e.g. ["blk:io_complete"] *)
  | On_change of string  (** fires when the named store key is saved *)

type action =
  | Report of { message : string; keys : string list }
      (** Log the violation with a snapshot of the named keys. *)
  | Replace of string  (** switch the named policy to its fallback *)
  | Restore of string  (** reinstate the named learned policy *)
  | Retrain of string  (** kick an asynchronous retrain *)
  | Deprioritize of { cls : string; weight : expr located }
  | Kill of string  (** kill every task of a scheduling class *)
  | Save of { key : string; value : expr located }

type guardrail = {
  name : string;
  pos : pos;  (** position of the [guardrail] keyword *)
  triggers : trigger located list;  (** non-empty *)
  rules : expr located list;  (** non-empty; conjoined *)
  actions : action located list;  (** non-empty *)
}

type spec = guardrail list

(** {1 Scoped keys}

    Feature-store keys are scoped: a plain key names node-local state,
    while the [GLOBAL(key)] qualifier names the fleet-wide store tier.
    The AST keeps keys as strings and carries scope in a canonical
    encoding — [global::name] — so the compiler's slot tables, the
    dependency analysis and the lint pass distinguish scopes by plain
    string identity, and the flat string stays valid as node-local
    sugar. *)

val global_prefix : string
(** ["global::"], the encoding prefix. *)

val global_key : string -> string
(** [global_key "x"] is ["global::x"], the encoded form that
    [GLOBAL(x)] parses to. *)

val is_global_key : string -> bool
(** Whether an encoded key names the global tier. *)

val local_name : string -> string
(** The bare name with any scope prefix stripped — what [GLOBAL(x)]
    prints as [x]. *)

val node_key : int -> string -> string
(** [node_key 3 "x"] is ["node3::x"], the node-qualified form used
    when monitors from several nodes are analysed together. Global
    keys pass through unqualified — they name one fleet-wide cell
    whichever node touches them. *)

val unop_symbol : unop -> string
val binop_symbol : binop -> string
val agg_name : agg -> string
