type pos = { line : int; col : int }

let pp_pos fmt { line; col } = Format.fprintf fmt "line %d, column %d" line col

type 'a located = { node : 'a; pos : pos }

let at pos node = { node; pos }

type unop = Neg | Not | Abs

type binop = Add | Sub | Mul | Div | Lt | Le | Gt | Ge | Eq | Ne | And | Or

type agg = Avg | Rate | Count | Sum | Min | Max | Stddev | Quantile | Delta

type expr =
  | Number of float
  | Bool of bool
  | Load of string
  | Unop of unop * expr located
  | Binop of binop * expr located * expr located
  | Agg of agg_call

and agg_call = {
  fn : agg;
  key : string;
  window : expr located;
  param : expr located option;
}

type trigger =
  | Timer of { start : expr located; interval : expr located; stop : expr located option }
  | Function of string
  | On_change of string

type action =
  | Report of { message : string; keys : string list }
  | Replace of string
  | Restore of string
  | Retrain of string
  | Deprioritize of { cls : string; weight : expr located }
  | Kill of string
  | Save of { key : string; value : expr located }

type guardrail = {
  name : string;
  pos : pos;  (* position of the "guardrail" keyword *)
  triggers : trigger located list;
  rules : expr located list;
  actions : action located list;
}

type spec = guardrail list

(* Scoped feature-store keys. A plain key names node-local state; the
   GLOBAL(key) qualifier names the fleet-wide tier. The AST carries the
   canonical encoded form — "global::" ^ name — so every downstream
   consumer (slot tables, dependency analysis, lint, the store itself)
   distinguishes scopes by ordinary string identity. *)
let global_prefix = "global::"

let global_key name = global_prefix ^ name

let is_global_key key =
  let n = String.length global_prefix in
  String.length key >= n && String.sub key 0 n = global_prefix

let local_name key =
  if is_global_key key then
    String.sub key (String.length global_prefix)
      (String.length key - String.length global_prefix)
  else key

(* Node-qualified display form used when several nodes' monitors are
   analysed together: "node3::key". Global keys are never qualified —
   they name one fleet-wide cell whichever node touches them. *)
let node_key node_id key =
  if is_global_key key then key else Printf.sprintf "node%d::%s" node_id key

let unop_symbol = function Neg -> "-" | Not -> "!" | Abs -> "ABS"

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

let agg_name = function
  | Avg -> "AVG"
  | Rate -> "RATE"
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Min -> "MIN"
  | Max -> "MAX"
  | Stddev -> "STDDEV"
  | Quantile -> "QUANTILE"
  | Delta -> "DELTA"
