open Ast

type state = { mutable toks : (Lexer.token * pos) list }

let error pos msg = raise (Lexer.Error (pos, msg))

let peek st = match st.toks with (t, p) :: _ -> (t, p) | [] -> assert false

let advance st = match st.toks with _ :: rest when rest <> [] -> st.toks <- rest | _ -> ()

let expect st tok =
  let t, p = peek st in
  if t = tok then advance st
  else error p (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string tok) (Lexer.token_to_string t))

let expect_ident st what =
  match peek st with
  | Lexer.IDENT name, _ ->
    advance st;
    name
  | t, p -> error p (Printf.sprintf "expected %s but found %s" what (Lexer.token_to_string t))

let expect_string st what =
  match peek st with
  | Lexer.STRING s, _ ->
    advance st;
    s
  | t, p -> error p (Printf.sprintf "expected %s (a string) but found %s" what (Lexer.token_to_string t))

(* A name or key: an identifier, or a string literal for names that
   the identifier syntax cannot express (e.g. hook names with ':'). *)
let expect_name st what =
  match peek st with
  | Lexer.IDENT name, _ ->
    advance st;
    name
  | Lexer.STRING s, _ ->
    advance st;
    s
  | t, p -> error p (Printf.sprintf "expected %s but found %s" what (Lexer.token_to_string t))

(* A feature-store key position: a plain name is node-local, and the
   GLOBAL(name) qualifier selects the fleet-wide tier, carried in the
   AST as the canonical "global::" encoding. Only key positions accept
   the qualifier — hook names, policy names and scheduling classes do
   not. *)
let parse_key st what =
  match peek st with
  | Lexer.IDENT "GLOBAL", _ ->
    advance st;
    expect st Lexer.LPAREN;
    let name = expect_name st what in
    expect st Lexer.RPAREN;
    global_key name
  | _ -> expect_name st what

let agg_of_ident = function
  | "AVG" -> Some Avg
  | "RATE" -> Some Rate
  | "COUNT" -> Some Count
  | "SUM" -> Some Sum
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | "STDDEV" -> Some Stddev
  | "QUANTILE" -> Some Quantile
  | "DELTA" -> Some Delta
  | _ -> None

(* Precedence-climbing expression parser. Levels, loosest first:
   || / && / comparison / additive / multiplicative / unary / atom. *)
let rec parse_or st =
  let lhs = parse_and st in
  match peek st with
  | Lexer.OROR, p ->
    advance st;
    let rhs = parse_or st in
    at p (Binop (Or, lhs, rhs))
  | _ -> lhs

and parse_and st =
  let lhs = parse_cmp st in
  match peek st with
  | Lexer.ANDAND, p ->
    advance st;
    let rhs = parse_and st in
    at p (Binop (And, lhs, rhs))
  | _ -> lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Lexer.LT, p -> Some (Lt, p)
    | Lexer.LE, p -> Some (Le, p)
    | Lexer.GT, p -> Some (Gt, p)
    | Lexer.GE, p -> Some (Ge, p)
    | Lexer.EQEQ, p -> Some (Eq, p)
    | Lexer.NE, p -> Some (Ne, p)
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some (op, p) ->
    advance st;
    let rhs = parse_add st in
    at p (Binop (op, lhs, rhs))

and parse_add st =
  let rec loop lhs =
    match peek st with
    | Lexer.PLUS, p ->
      advance st;
      loop (at p (Binop (Add, lhs, parse_mul st)))
    | Lexer.MINUS, p ->
      advance st;
      loop (at p (Binop (Sub, lhs, parse_mul st)))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek st with
    | Lexer.STAR, p ->
      advance st;
      loop (at p (Binop (Mul, lhs, parse_unary st)))
    | Lexer.SLASH, p ->
      advance st;
      loop (at p (Binop (Div, lhs, parse_unary st)))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.MINUS, p ->
    advance st;
    at p (Unop (Neg, parse_unary st))
  | Lexer.BANG, p ->
    advance st;
    at p (Unop (Not, parse_unary st))
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Lexer.NUMBER f, p ->
    advance st;
    at p (Number f)
  | Lexer.TRUE, p ->
    advance st;
    at p (Bool true)
  | Lexer.FALSE, p ->
    advance st;
    at p (Bool false)
  | Lexer.LPAREN, _ ->
    advance st;
    let e = parse_or st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT "LOAD", p ->
    advance st;
    expect st Lexer.LPAREN;
    let key = parse_key st "a feature-store key" in
    expect st Lexer.RPAREN;
    at p (Load key)
  | Lexer.IDENT "ABS", p ->
    advance st;
    expect st Lexer.LPAREN;
    let e = parse_or st in
    expect st Lexer.RPAREN;
    at p (Unop (Abs, e))
  | Lexer.IDENT "start_time", p ->
    (* Listing 2 writes TIMER(start_time, 1e9); treat the symbolic
       start as "from deployment", i.e. 0. *)
    advance st;
    at p (Number 0.)
  | Lexer.IDENT name, p when agg_of_ident name <> None ->
    let fn = Option.get (agg_of_ident name) in
    advance st;
    expect st Lexer.LPAREN;
    let key = parse_key st "a feature-store key" in
    expect st Lexer.COMMA;
    (* QUANTILE(key, q, window); others are FN(key, window). *)
    let first = parse_or st in
    let param, window =
      if fn = Quantile then begin
        expect st Lexer.COMMA;
        let window = parse_or st in
        (Some first, window)
      end
      else (None, first)
    in
    expect st Lexer.RPAREN;
    at p (Agg { fn; key; window; param })
  | t, p -> error p (Printf.sprintf "expected an expression but found %s" (Lexer.token_to_string t))

(* Guardrail names may be hyphenated, as in the paper's
   low-false-submit: parse IDENT (- IDENT)*. *)
let parse_guardrail_name st =
  let first = expect_ident st "a guardrail name" in
  let buf = Buffer.create 16 in
  Buffer.add_string buf first;
  (* Keywords may appear as name fragments (the paper's example is
     low-false-submit, where "false" lexes as a keyword). *)
  let fragment = function
    | Lexer.IDENT part -> Some part
    | Lexer.TRUE -> Some "true"
    | Lexer.FALSE -> Some "false"
    | Lexer.TRIGGER -> Some "trigger"
    | Lexer.RULE -> Some "rule"
    | Lexer.ACTION -> Some "action"
    | Lexer.GUARDRAIL -> Some "guardrail"
    | Lexer.NUMBER f when Float.is_integer f && f >= 0. && f < 1e9 ->
      (* Versioned names like retry-guard-2. *)
      Some (string_of_int (int_of_float f))
    | _ -> None
  in
  let rec loop () =
    match st.toks with
    | (Lexer.MINUS, _) :: (tok, _) :: rest -> (
      match fragment tok with
      | Some part ->
        Buffer.add_char buf '-';
        Buffer.add_string buf part;
        st.toks <- rest;
        loop ()
      | None -> ())
    | _ -> ()
  in
  loop ();
  Buffer.contents buf

let parse_trigger st =
  match peek st with
  | Lexer.IDENT "TIMER", p ->
    advance st;
    expect st Lexer.LPAREN;
    let start = parse_or st in
    expect st Lexer.COMMA;
    let interval = parse_or st in
    let stop =
      match peek st with
      | Lexer.COMMA, _ ->
        advance st;
        Some (parse_or st)
      | _ -> None
    in
    expect st Lexer.RPAREN;
    at p (Timer { start; interval; stop })
  | Lexer.IDENT "FUNCTION", p ->
    advance st;
    expect st Lexer.LPAREN;
    let name = expect_name st "a hook name" in
    expect st Lexer.RPAREN;
    at p (Function name)
  | Lexer.IDENT "ON_CHANGE", p ->
    advance st;
    expect st Lexer.LPAREN;
    let key = parse_key st "a feature-store key" in
    expect st Lexer.RPAREN;
    at p (On_change key)
  | t, p ->
    error p
      (Printf.sprintf "expected TIMER, FUNCTION or ON_CHANGE but found %s"
         (Lexer.token_to_string t))

let parse_action st =
  match peek st with
  | Lexer.IDENT "REPORT", p ->
    advance st;
    expect st Lexer.LPAREN;
    let message = expect_string st "a report message" in
    let rec keys acc =
      match peek st with
      | Lexer.COMMA, _ ->
        advance st;
        keys (parse_key st "a feature-store key" :: acc)
      | _ -> List.rev acc
    in
    let keys = keys [] in
    expect st Lexer.RPAREN;
    at p (Report { message; keys })
  | Lexer.IDENT "REPLACE", p ->
    advance st;
    expect st Lexer.LPAREN;
    let name = expect_name st "a registered policy name" in
    expect st Lexer.RPAREN;
    at p (Replace name)
  | Lexer.IDENT "RESTORE", p ->
    advance st;
    expect st Lexer.LPAREN;
    let name = expect_name st "a registered policy name" in
    expect st Lexer.RPAREN;
    at p (Restore name)
  | Lexer.IDENT "RETRAIN", p ->
    advance st;
    expect st Lexer.LPAREN;
    let name = expect_name st "a registered policy name" in
    expect st Lexer.RPAREN;
    at p (Retrain name)
  | Lexer.IDENT "DEPRIORITIZE", p ->
    advance st;
    expect st Lexer.LPAREN;
    let cls = expect_name st "a scheduling class" in
    expect st Lexer.COMMA;
    let weight = parse_or st in
    expect st Lexer.RPAREN;
    at p (Deprioritize { cls; weight })
  | Lexer.IDENT "KILL", p ->
    advance st;
    expect st Lexer.LPAREN;
    let cls = expect_name st "a scheduling class" in
    expect st Lexer.RPAREN;
    at p (Kill cls)
  | Lexer.IDENT "SAVE", p ->
    advance st;
    expect st Lexer.LPAREN;
    let key = parse_key st "a feature-store key" in
    expect st Lexer.COMMA;
    let value = parse_or st in
    expect st Lexer.RPAREN;
    at p (Save { key; value })
  | t, p ->
    error p
      (Printf.sprintf
         "expected REPORT, REPLACE, RESTORE, RETRAIN, DEPRIORITIZE, KILL or SAVE but found %s"
         (Lexer.token_to_string t))

let skip_separators st =
  let rec loop () =
    match peek st with
    | (Lexer.COMMA | Lexer.SEMI), _ ->
      advance st;
      loop ()
    | _ -> ()
  in
  loop ()

(* Parses "{ item (sep item)* }" where items end at '}'. *)
let parse_block st parse_item =
  expect st Lexer.LBRACE;
  let rec loop acc =
    skip_separators st;
    match peek st with
    | Lexer.RBRACE, _ ->
      advance st;
      List.rev acc
    | _ -> loop (parse_item st :: acc)
  in
  loop []

let parse_guardrail st =
  let guardrail_pos = snd (peek st) in
  expect st Lexer.GUARDRAIL;
  let name = parse_guardrail_name st in
  expect st Lexer.LBRACE;
  let triggers = ref [] and rules = ref [] and actions = ref [] in
  let rec sections () =
    skip_separators st;
    match peek st with
    | Lexer.RBRACE, _ -> advance st
    | Lexer.TRIGGER, _ ->
      advance st;
      expect st Lexer.COLON;
      triggers := !triggers @ parse_block st parse_trigger;
      sections ()
    | Lexer.RULE, _ ->
      advance st;
      expect st Lexer.COLON;
      rules := !rules @ parse_block st (fun st -> parse_or st);
      sections ()
    | Lexer.ACTION, _ ->
      advance st;
      expect st Lexer.COLON;
      actions := !actions @ parse_block st parse_action;
      sections ()
    | t, p ->
      error p
        (Printf.sprintf "expected 'trigger:', 'rule:' or 'action:' but found %s"
           (Lexer.token_to_string t))
  in
  sections ();
  let check what = function
    | [] -> error (peek st |> snd) (Printf.sprintf "guardrail %s has no %s" name what)
    | items -> items
  in
  {
    name;
    pos = guardrail_pos;
    triggers = check "trigger" !triggers;
    rules = check "rule" !rules;
    actions = check "action" !actions;
  }

let parse_spec st =
  let rec loop acc =
    match peek st with
    | Lexer.EOF, _ -> List.rev acc
    | Lexer.GUARDRAIL, _ -> loop (parse_guardrail st :: acc)
    | t, p ->
      error p (Printf.sprintf "expected 'guardrail' but found %s" (Lexer.token_to_string t))
  in
  loop []

let with_state src f =
  let st = { toks = Lexer.tokenize src } in
  f st

let parse_exn src = with_state src parse_spec

let parse src =
  match parse_exn src with
  | spec -> Ok spec
  | exception Lexer.Error (pos, msg) -> Error (pos, msg)

let parse_expr src =
  match
    with_state src (fun st ->
        let e = parse_or st in
        expect st Lexer.EOF;
        e)
  with
  | e -> Ok e
  | exception Lexer.Error (pos, msg) -> Error (pos, msg)
