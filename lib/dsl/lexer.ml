type token =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | SEMI
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | ANDAND
  | OROR
  | BANG
  | TRUE
  | FALSE
  | GUARDRAIL
  | TRIGGER
  | RULE
  | ACTION
  | EOF

exception Error of Ast.pos * string

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let pos st = { Ast.line = st.line; col = st.col }
let error st msg = raise (Error (pos st, msg))
let peek st = if st.off < String.length st.src then Some st.src.[st.off] else None

let peek2 st =
  if st.off + 1 < String.length st.src then Some st.src.[st.off + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.off <- st.off + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_ws st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let rec find_close () =
      match (peek st, peek2 st) with
      | Some '*', Some '/' ->
        advance st;
        advance st
      | Some _, _ ->
        advance st;
        find_close ()
      | None, _ -> error st "unterminated block comment"
    in
    find_close ();
    skip_ws st
  | _ -> ()

let lex_string st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> begin
      advance st;
      match peek st with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance st;
        loop ()
      | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
      | None -> error st "unterminated escape"
    end
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  STRING (Buffer.contents buf)

(* A number is digits, optional fraction, optional exponent, then an
   optional duration suffix (ns/us/ms/s) scaling it to nanoseconds. *)
let lex_number st =
  let start = st.off in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  (match (peek st, peek2 st) with
  | Some '.', Some c when is_digit c ->
    advance st;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
    let after_e =
      match peek2 st with
      | Some c when is_digit c -> true
      | Some ('+' | '-') -> true
      | _ -> false
    in
    if after_e then begin
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
    end
  | _ -> ());
  let base = float_of_string (String.sub st.src start (st.off - start)) in
  (* Duration suffix: longest match among ns, us, ms, s. *)
  let suffix_start = st.off in
  while (match peek st with Some c -> is_ident_start c | None -> false) do
    advance st
  done;
  let suffix = String.sub st.src suffix_start (st.off - suffix_start) in
  match suffix with
  | "" -> NUMBER base
  | "ns" -> NUMBER base
  | "us" -> NUMBER (base *. 1e3)
  | "ms" -> NUMBER (base *. 1e6)
  | "s" -> NUMBER (base *. 1e9)
  | other -> error st (Printf.sprintf "unknown duration suffix %S" other)

let lex_ident st =
  let start = st.off in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  match String.sub st.src start (st.off - start) with
  | "guardrail" -> GUARDRAIL
  | "trigger" -> TRIGGER
  | "rule" -> RULE
  | "action" -> ACTION
  | "true" -> TRUE
  | "false" -> FALSE
  | name -> IDENT name

let next_token st =
  skip_ws st;
  let p = pos st in
  let tok =
    match peek st with
    | None -> EOF
    | Some '"' -> lex_string st
    | Some c when is_digit c -> lex_number st
    | Some c when is_ident_start c -> lex_ident st
    | Some c ->
      let two target result =
        if peek2 st = Some target then begin
          advance st;
          advance st;
          Some result
        end
        else None
      in
      let simple result =
        advance st;
        result
      in
      (match c with
      | '{' -> simple LBRACE
      | '}' -> simple RBRACE
      | '(' -> simple LPAREN
      | ')' -> simple RPAREN
      | ',' -> simple COMMA
      | ':' -> simple COLON
      | ';' -> simple SEMI
      | '+' -> simple PLUS
      | '-' -> simple MINUS
      | '*' -> simple STAR
      | '/' -> simple SLASH
      | '<' -> ( match two '=' LE with Some t -> t | None -> simple LT)
      | '>' -> ( match two '=' GE with Some t -> t | None -> simple GT)
      | '=' -> (
        match two '=' EQEQ with
        | Some t -> t
        | None -> error st "'=' must be '==' (comparison); SAVE uses a comma")
      | '!' -> ( match two '=' NE with Some t -> t | None -> simple BANG)
      | '&' -> (
        match two '&' ANDAND with Some t -> t | None -> error st "'&' must be '&&'")
      | '|' -> (
        match two '|' OROR with Some t -> t | None -> error st "'|' must be '||'")
      | c -> error st (Printf.sprintf "unexpected character %C" c))
  in
  (tok, p)

let tokenize src =
  let st = { src; off = 0; line = 1; col = 1 } in
  let rec loop acc =
    let ((tok, _) as t) = next_token st in
    if tok = EOF then List.rev (t :: acc) else loop (t :: acc)
  in
  loop []

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUMBER f -> Printf.sprintf "number %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | COLON -> "':'"
  | SEMI -> "';'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EQEQ -> "'=='"
  | NE -> "'!='"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | TRUE -> "'true'"
  | FALSE -> "'false'"
  | GUARDRAIL -> "'guardrail'"
  | TRIGGER -> "'trigger'"
  | RULE -> "'rule'"
  | ACTION -> "'action'"
  | EOF -> "end of input"
