(** Pretty-printer for guardrail specifications.

    Emits concrete syntax that {!Parser.parse} accepts, which the test
    suite uses as a parse/print round-trip property. Durations are
    printed as plain nanosecond numbers (canonical form). *)

val expr : Format.formatter -> Ast.expr Ast.located -> unit
val trigger : Format.formatter -> Ast.trigger Ast.located -> unit
val action : Format.formatter -> Ast.action Ast.located -> unit
val guardrail : Format.formatter -> Ast.guardrail -> unit
val spec : Format.formatter -> Ast.spec -> unit

val expr_to_string : Ast.expr Ast.located -> string
val spec_to_string : Ast.spec -> string
