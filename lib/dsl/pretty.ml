open Ast

(* Binding strength of each operator, used to parenthesise minimally:
   higher binds tighter. Comparison operators are non-associative in
   the grammar, so equal precedence on either side is parenthesised. *)
let prec = function
  | Or -> 1
  | And -> 2
  | Lt | Le | Gt | Ge | Eq | Ne -> 3
  | Add | Sub -> 4
  | Mul | Div -> 5

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else begin
    (* Shortest decimal form that round-trips. *)
    let rec try_prec p =
      if p > 17 then Printf.sprintf "%.17g" f
      else begin
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else try_prec (p + 1)
      end
    in
    try_prec 1
  end

(* Keys print in source syntax: the encoded "global::" form the parser
   produced for GLOBAL(name) goes back out as the qualifier, so
   parse ∘ pretty is the identity on scoped keys too. *)
let key fmt k =
  if is_global_key k then Format.fprintf fmt "GLOBAL(%s)" (local_name k)
  else Format.pp_print_string fmt k

let rec pp_expr ~parent fmt { node; _ } =
  match node with
  | Number f -> Format.pp_print_string fmt (float_lit f)
  | Bool b -> Format.pp_print_bool fmt b
  | Load k -> Format.fprintf fmt "LOAD(%a)" key k
  | Unop (Abs, e) -> Format.fprintf fmt "ABS(%a)" (pp_expr ~parent:0) e
  | Unop (op, e) -> Format.fprintf fmt "%s%a" (unop_symbol op) (pp_expr ~parent:6) e
  | Binop (op, lhs, rhs) ->
    let p = prec op in
    let needs_parens = p <= parent in
    (* Parenthesise the side that re-parsing would otherwise regroup:
       && and || parse right-associative, arithmetic left-associative,
       comparisons are non-associative. *)
    let lhs_parent, rhs_parent =
      match op with
      | And | Or -> (p, p - 1)
      | Add | Sub | Mul | Div -> (p - 1, p)
      | Lt | Le | Gt | Ge | Eq | Ne -> (p, p)
    in
    let open_p, close_p = if needs_parens then ("(", ")") else ("", "") in
    Format.fprintf fmt "%s%a %s %a%s" open_p
      (pp_expr ~parent:lhs_parent) lhs (binop_symbol op)
      (pp_expr ~parent:rhs_parent) rhs close_p
  | Agg { fn; key = k; window; param } -> (
    match param with
    | Some q ->
      Format.fprintf fmt "%s(%a, %a, %a)" (agg_name fn) key k (pp_expr ~parent:0) q
        (pp_expr ~parent:0) window
    | None ->
      Format.fprintf fmt "%s(%a, %a)" (agg_name fn) key k (pp_expr ~parent:0) window)

let expr fmt e = pp_expr ~parent:0 fmt e

let trigger fmt { node; _ } =
  match node with
  | Timer { start; interval; stop = None } ->
    Format.fprintf fmt "TIMER(%a, %a)" expr start expr interval
  | Timer { start; interval; stop = Some stop } ->
    Format.fprintf fmt "TIMER(%a, %a, %a)" expr start expr interval expr stop
  | Function name -> Format.fprintf fmt "FUNCTION(%S)" name
  | On_change k -> Format.fprintf fmt "ON_CHANGE(%a)" key k

let action fmt { node; _ } =
  match node with
  | Report { message; keys } ->
    Format.fprintf fmt "REPORT(%S" message;
    List.iter (fun k -> Format.fprintf fmt ", %a" key k) keys;
    Format.pp_print_string fmt ")"
  | Replace name -> Format.fprintf fmt "REPLACE(%S)" name
  | Restore name -> Format.fprintf fmt "RESTORE(%S)" name
  | Retrain name -> Format.fprintf fmt "RETRAIN(%S)" name
  | Deprioritize { cls; weight } ->
    Format.fprintf fmt "DEPRIORITIZE(%S, %a)" cls expr weight
  | Kill cls -> Format.fprintf fmt "KILL(%S)" cls
  | Save { key = k; value } -> Format.fprintf fmt "SAVE(%a, %a)" key k expr value

(* Items are separated by ';' — without an explicit separator, two
   newline-separated rules such as "LOAD(a) < 1" and "-5 < 3" would
   re-parse as one expression ("1 - 5"). *)
let block fmt name pp items =
  Format.fprintf fmt "  %s: {@\n" name;
  List.iter (fun item -> Format.fprintf fmt "    %a;@\n" pp item) items;
  Format.fprintf fmt "  }@\n"

let guardrail fmt g =
  Format.fprintf fmt "guardrail %s {@\n" g.name;
  block fmt "trigger" trigger g.triggers;
  block fmt "rule" expr g.rules;
  block fmt "action" action g.actions;
  Format.fprintf fmt "}@\n"

let spec fmt gs =
  List.iteri
    (fun i g ->
      if i > 0 then Format.pp_print_newline fmt ();
      guardrail fmt g)
    gs

let expr_to_string e = Format.asprintf "%a" expr e
let spec_to_string s = Format.asprintf "%a" spec s
