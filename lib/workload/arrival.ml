open Gr_util

type state = Calm | Burst

type kind =
  | Poisson of float
  | Uniform of float
  | Mmpp of {
      calm_rate : float;
      burst_rate : float;
      mean_calm : Time_ns.t;
      mean_burst : Time_ns.t;
      mutable state : state;
      mutable remaining : Time_ns.t; (* time left in current state *)
    }

type t = kind

let check_rate r = if r <= 0. then invalid_arg "Arrival: rate must be positive"

let poisson ~rate_per_sec =
  check_rate rate_per_sec;
  Poisson rate_per_sec

let uniform ~rate_per_sec =
  check_rate rate_per_sec;
  Uniform rate_per_sec

let mmpp ~calm_rate ~burst_rate ~mean_calm ~mean_burst =
  check_rate calm_rate;
  check_rate burst_rate;
  Mmpp { calm_rate; burst_rate; mean_calm; mean_burst; state = Calm; remaining = mean_calm }

let exp_ns rng ~rate_per_sec = Time_ns.of_float_sec (Rng.exponential rng ~rate:rate_per_sec)

let next_interarrival t rng =
  let gap =
    match t with
    | Poisson rate -> exp_ns rng ~rate_per_sec:rate
    | Uniform rate -> Time_ns.of_float_sec (1. /. rate)
    | Mmpp m ->
      (* Switch states when the sojourn expires; sojourns are
         exponential around the configured means. *)
      if m.remaining <= 0 then begin
        (match m.state with
        | Calm ->
          m.state <- Burst;
          m.remaining <-
            Time_ns.of_float_sec
              (Rng.exponential rng ~rate:(1. /. Time_ns.to_float_sec m.mean_burst))
        | Burst ->
          m.state <- Calm;
          m.remaining <-
            Time_ns.of_float_sec
              (Rng.exponential rng ~rate:(1. /. Time_ns.to_float_sec m.mean_calm)));
        ()
      end;
      let rate = match m.state with Calm -> m.calm_rate | Burst -> m.burst_rate in
      let gap = exp_ns rng ~rate_per_sec:rate in
      m.remaining <- Time_ns.diff m.remaining gap;
      gap
  in
  Time_ns.max 1 gap
