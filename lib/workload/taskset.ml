open Gr_util

type spec = { cls : string; weight : int; demand : Time_ns.t; arrival : Arrival.t }

let interactive ~rate_per_sec =
  {
    cls = "interactive";
    weight = 1024;
    demand = Time_ns.ms 8;
    arrival = Arrival.poisson ~rate_per_sec;
  }

let batch ~rate_per_sec =
  {
    cls = "batch";
    weight = 1024;
    demand = Time_ns.sec 2;
    arrival = Arrival.poisson ~rate_per_sec;
  }

let run ~engine ~rng ~sched ~specs ~until =
  List.iteri
    (fun i spec ->
      let rng = Rng.fork rng in
      let counter = ref 0 in
      let rec spawn_next e =
        if Time_ns.compare (Gr_sim.Engine.now e) until < 0 then begin
          incr counter;
          let name = Printf.sprintf "%s-%d-%d" spec.cls i !counter in
          ignore
            (Gr_kernel.Sched.spawn sched ~name ~cls:spec.cls ~weight:spec.weight
               ~demand:spec.demand ()
              : Gr_kernel.Sched.task);
          let gap = Arrival.next_interarrival spec.arrival rng in
          ignore (Gr_sim.Engine.schedule_after e gap spawn_next : Gr_sim.Engine.handle)
        end
      in
      ignore (Gr_sim.Engine.schedule_after engine 0 spawn_next : Gr_sim.Engine.handle))
    specs
