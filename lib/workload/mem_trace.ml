open Gr_util

type kind =
  | Zipfian of {
      rng : Rng.t;
      zipf : Rng.Zipf.t;
      n_pages : int;
      mutable hot_offset : int;
    }
  | Scan of { n_pages : int; mutable pos : int }
  | Mixed of { rng : Rng.t; scan_fraction : float; main : t; other : t }

and t = kind

let zipfian ~rng ~n_pages ?(s = 1.1) ?(hot_offset = 0) () =
  if n_pages <= 0 then invalid_arg "Mem_trace.zipfian: n_pages must be positive";
  Zipfian { rng = Rng.fork rng; zipf = Rng.Zipf.create ~n:n_pages ~s; n_pages; hot_offset }

let scan ~n_pages =
  if n_pages <= 0 then invalid_arg "Mem_trace.scan: n_pages must be positive";
  Scan { n_pages; pos = 0 }

let mixed ~rng ~scan_fraction main other =
  if not (scan_fraction >= 0. && scan_fraction <= 1.) then
    invalid_arg "Mem_trace.mixed: scan_fraction must be in [0,1]";
  Mixed { rng = Rng.fork rng; scan_fraction; main; other }

let rec next = function
  | Zipfian z ->
    let rank = Rng.Zipf.sample z.zipf z.rng in
    (rank + z.hot_offset) mod z.n_pages
  | Scan s ->
    let page = s.pos in
    s.pos <- (s.pos + 1) mod s.n_pages;
    page
  | Mixed m -> if Rng.float m.rng 1.0 < m.scan_fraction then next m.other else next m.main

let rec shift_hot_set t ~offset =
  match t with
  | Zipfian z -> z.hot_offset <- offset
  | Scan _ -> ()
  | Mixed m ->
    shift_hot_set m.main ~offset;
    shift_hot_set m.other ~offset
