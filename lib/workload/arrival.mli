(** Request arrival processes.

    Learned OS policies fail in interesting ways only under dynamic
    load, so the workload generators support Poisson arrivals, a
    two-state Markov-modulated Poisson process (calm/bursty), and
    fixed-rate arrivals for calibration. *)

type t

val poisson : rate_per_sec:float -> t

val uniform : rate_per_sec:float -> t
(** Deterministic interarrival [1/rate]. *)

val mmpp :
  calm_rate:float ->
  burst_rate:float ->
  mean_calm:Gr_util.Time_ns.t ->
  mean_burst:Gr_util.Time_ns.t ->
  t
(** Two-state MMPP: exponentially distributed sojourn in each state,
    Poisson arrivals at the state's rate. *)

val next_interarrival : t -> Gr_util.Rng.t -> Gr_util.Time_ns.t
(** Draws the gap to the next arrival (at least 1ns, so the simulation
    always advances). *)
