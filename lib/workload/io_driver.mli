(** Drives a read workload against the block layer.

    Submits reads according to an arrival process, spreading primaries
    over the devices with a Zipf popularity skew, and records every
    completion (timestamped latency plus misprediction flags) for
    post-processing into Figure 2 style series. *)

type sample = {
  at : Gr_util.Time_ns.t;  (** completion time *)
  latency_us : float;
  false_submit : bool;
  false_revoke : bool;
  redirected : bool;
}

type t

val start :
  engine:Gr_sim.Engine.t ->
  rng:Gr_util.Rng.t ->
  blk:Gr_kernel.Blk.t ->
  arrival:Arrival.t ->
  n_devices:int ->
  ?zipf_s:float ->
  ?until:Gr_util.Time_ns.t ->
  unit ->
  t
(** Begins submitting immediately; stops issuing new I/Os at [until]
    if given (in-flight ones still complete). *)

val samples : t -> sample list
(** Chronological by completion time. *)

val submitted : t -> int
