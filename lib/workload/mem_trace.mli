(** Page-access trace generators for the memory and cache subsystems.

    Produces zipf-skewed access streams over a page universe, with an
    optional hot-set shift mid-trace — the workload drift that makes a
    trained placement model stale (P1), and a sequential-scan pattern
    that defeats recency-based policies (the "write-intensive random
    pattern" style failure the paper cites for learned placement). *)

type t

val zipfian :
  rng:Gr_util.Rng.t -> n_pages:int -> ?s:float -> ?hot_offset:int -> unit -> t
(** Popularity-ranked pages with rank [i] mapped to page
    [(i + hot_offset) mod n_pages]; shifting [hot_offset] between
    phases moves the hot set. *)

val scan : n_pages:int -> t
(** Cyclic sequential sweep [0, 1, ..., n_pages-1, 0, ...]. *)

val mixed : rng:Gr_util.Rng.t -> scan_fraction:float -> t -> t -> t
(** Each access drawn from the second generator with probability
    [scan_fraction], else the first. *)

val next : t -> int
(** Next page number. *)

val shift_hot_set : t -> offset:int -> unit
(** Applies to zipfian generators (recursively through [mixed]);
    no-op for [scan]. *)
