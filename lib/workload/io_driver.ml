open Gr_util

type sample = {
  at : Time_ns.t;
  latency_us : float;
  false_submit : bool;
  false_revoke : bool;
  redirected : bool;
}

type t = {
  engine : Gr_sim.Engine.t;
  rng : Rng.t;
  blk : Gr_kernel.Blk.t;
  arrival : Arrival.t;
  zipf : Rng.Zipf.t;
  until : Time_ns.t option;
  mutable submitted : int;
  mutable samples_rev : sample list;
}

let record t (res : Gr_kernel.Blk.io_result) =
  let sample =
    {
      at = Time_ns.add res.submitted_at res.latency;
      latency_us = Time_ns.to_float_us res.latency;
      false_submit =
        (match res.decision with
        | Gr_kernel.Blk.Trust_primary -> res.primary_was_slow
        | Gr_kernel.Blk.Hedge _ | Gr_kernel.Blk.Revoke_now -> false);
      false_revoke =
        (match res.decision with
        | Gr_kernel.Blk.Revoke_now -> not res.primary_was_slow
        | Gr_kernel.Blk.Hedge _ | Gr_kernel.Blk.Trust_primary -> false);
      redirected = res.redirected;
    }
  in
  t.samples_rev <- sample :: t.samples_rev

let rec pump t engine =
  let now = Gr_sim.Engine.now engine in
  let stopped = match t.until with Some u -> Time_ns.compare now u >= 0 | None -> false in
  if not stopped then begin
    let primary = Rng.Zipf.sample t.zipf t.rng in
    t.submitted <- t.submitted + 1;
    Gr_kernel.Blk.submit_read t.blk ~primary ~on_complete:(record t);
    let gap = Arrival.next_interarrival t.arrival t.rng in
    ignore (Gr_sim.Engine.schedule_after engine gap (pump t) : Gr_sim.Engine.handle)
  end

let start ~engine ~rng ~blk ~arrival ~n_devices ?(zipf_s = 0.9) ?until () =
  let t =
    {
      engine;
      rng = Rng.fork rng;
      blk;
      arrival;
      zipf = Rng.Zipf.create ~n:n_devices ~s:zipf_s;
      until;
      submitted = 0;
      samples_rev = [];
    }
  in
  ignore (Gr_sim.Engine.schedule_after engine 0 (pump t) : Gr_sim.Engine.handle);
  t

let samples t =
  List.sort (fun a b -> Time_ns.compare a.at b.at) (List.rev t.samples_rev)

let submitted t = t.submitted
