(** Task-set generators for the scheduler.

    Spawns a mix of scheduling classes over time: many short
    interactive tasks (latency-sensitive, the starvation victims in
    the P6 experiment) and a few long batch tasks (the class a
    misbehaving learned slice policy favours, and the DEPRIORITIZE
    target). *)

type spec = {
  cls : string;
  weight : int;
  demand : Gr_util.Time_ns.t;
  arrival : Arrival.t;  (** spawn process for this class *)
}

val interactive : rate_per_sec:float -> spec
(** class ["interactive"], 8ms demand, Poisson arrivals. *)

val batch : rate_per_sec:float -> spec
(** class ["batch"], 2s demand, Poisson arrivals. *)

val run :
  engine:Gr_sim.Engine.t ->
  rng:Gr_util.Rng.t ->
  sched:Gr_kernel.Sched.t ->
  specs:spec list ->
  until:Gr_util.Time_ns.t ->
  unit
(** Installs spawner events for every spec; stops spawning at
    [until]. *)
