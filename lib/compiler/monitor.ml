type trigger =
  | Timer of { start_ns : int; interval_ns : int; stop_ns : int option }
  | Function of string
  | On_change of string

type action =
  | Report of { message : string; keys : string list }
  | Replace of string
  | Restore of string
  | Retrain of string
  | Deprioritize of { cls : string; weight : int }
  | Kill of string
  | Save of { key : string; value : Ir.program }

type t = {
  name : string;
  pos : Gr_dsl.Ast.pos;
  slots : string array;
  triggers : trigger list;
  rule : Ir.program;
  actions : action list;
}

let static_cost_ns t =
  List.fold_left
    (fun acc -> function
      | Save { value; _ } -> acc +. Ir.static_cost_ns value
      | Report _ | Replace _ | Restore _ | Retrain _ | Deprioritize _ | Kill _ -> acc)
    (Ir.static_cost_ns t.rule) t.actions

let reads t =
  let of_program p = List.map (fun s -> t.slots.(s)) (Ir.read_slots p) in
  let save_reads =
    List.concat_map
      (function Save { value; _ } -> of_program value | _ -> [])
      t.actions
  in
  List.sort_uniq String.compare (of_program t.rule @ save_reads)

let writes t =
  List.sort_uniq String.compare
    (List.filter_map (function Save { key; _ } -> Some key | _ -> None) t.actions)

(* Rewrite every node-local key to its node-qualified form so monitors
   from different fleet nodes can be analysed as one deployment
   without conflating same-named keys. Global keys pass through: they
   really do name one shared cell. Hook names, policy names and
   scheduling classes are left alone. The monitor name is qualified
   too: same-named monitors from different node files are distinct
   deployment members, and diagnostics keyed by monitor name would
   otherwise attribute every node's findings to the first file. *)
let qualify ~node_id t =
  let q = Gr_dsl.Ast.node_key node_id in
  {
    t with
    name = q t.name;
    slots = Array.map q t.slots;
    triggers =
      List.map
        (function On_change key -> On_change (q key) | (Timer _ | Function _) as tr -> tr)
        t.triggers;
    actions =
      List.map
        (function
          | Report { message; keys } -> Report { message; keys = List.map q keys }
          | Save { key; value } -> Save { key = q key; value }
          | (Replace _ | Restore _ | Retrain _ | Deprioritize _ | Kill _) as a -> a)
        t.actions;
  }

let pp_trigger fmt = function
  | Timer { start_ns; interval_ns; stop_ns } ->
    Format.fprintf fmt "timer start=%dns interval=%dns%s" start_ns interval_ns
      (match stop_ns with None -> "" | Some s -> Printf.sprintf " stop=%dns" s)
  | Function hook -> Format.fprintf fmt "function %s" hook
  | On_change key -> Format.fprintf fmt "on-change %s" key

let pp_action ~slots fmt = function
  | Report { message; keys } ->
    Format.fprintf fmt "report %S%s" message
      (if keys = [] then "" else " keys=" ^ String.concat "," keys)
  | Replace p -> Format.fprintf fmt "replace %s" p
  | Restore p -> Format.fprintf fmt "restore %s" p
  | Retrain p -> Format.fprintf fmt "retrain %s" p
  | Deprioritize { cls; weight } -> Format.fprintf fmt "deprioritize %s weight=%d" cls weight
  | Kill cls -> Format.fprintf fmt "kill %s" cls
  | Save { key; value } ->
    Format.fprintf fmt "save %s <- {@\n%a}" key (Ir.pp_program ~slots) value

let pp fmt t =
  Format.fprintf fmt "monitor %s@\n" t.name;
  List.iter (fun tr -> Format.fprintf fmt "  trigger: %a@\n" pp_trigger tr) t.triggers;
  Format.fprintf fmt "  rule:@\n%a" (Ir.pp_program ~slots:t.slots) t.rule;
  List.iter (fun a -> Format.fprintf fmt "  action: %a@\n" (pp_action ~slots:t.slots) a) t.actions
