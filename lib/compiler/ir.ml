module Ast = Gr_dsl.Ast

type slot = int

type inst =
  | Const of { dst : int; value : float }
  | Load of { dst : int; slot : slot }
  | Agg of { dst : int; fn : Ast.agg; slot : slot; window_ns : float; param : float }
  | Unop of { dst : int; op : Ast.unop; src : int }
  | Binop of { dst : int; op : Ast.binop; lhs : int; rhs : int }

type program = {
  insts : inst array;
  result : int;
  n_regs : int;
  srcmap : Ast.pos array;
}

let pos_of p i =
  if i >= 0 && i < Array.length p.srcmap then Some p.srcmap.(i) else None

(* Single source of truth for the static per-instruction cost model;
   Vm.static_cost_ns, Verify's stats and gr_analysis all charge from
   here. Streaming demand registration made aggregates O(1) amortized;
   QUANTILE alone still ranks the in-window suffix per call. *)
let inst_cost_ns = function
  | Const _ -> 1.
  | Unop _ | Binop _ -> 2.
  | Load _ -> 6.
  | Agg { fn = Gr_dsl.Ast.Quantile; _ } -> 40.
  | Agg _ -> 8.

let static_cost_ns p = Array.fold_left (fun acc i -> acc +. inst_cost_ns i) 0. p.insts

let dst = function
  | Const { dst; _ } | Load { dst; _ } | Agg { dst; _ } | Unop { dst; _ } | Binop { dst; _ }
    -> dst

let operands = function
  | Const _ | Load _ | Agg _ -> []
  | Unop { src; _ } -> [ src ]
  | Binop { lhs; rhs; _ } -> [ lhs; rhs ]

let with_dst inst dst =
  match inst with
  | Const c -> Const { c with dst }
  | Load l -> Load { l with dst }
  | Agg a -> Agg { a with dst }
  | Unop u -> Unop { u with dst }
  | Binop b -> Binop { b with dst }

(* Per-register reader counts, with the program result counted as one
   extra use — a register with use_counts = 1 feeding the next
   instruction is safe to eliminate by fusion (the install-time
   specializers' superinstruction test). *)
let use_counts p =
  let uses = Array.make (max 1 p.n_regs) 0 in
  Array.iter (fun inst -> List.iter (fun r -> uses.(r) <- uses.(r) + 1) (operands inst)) p.insts;
  uses.(p.result) <- uses.(p.result) + 1;
  uses

let map_operands inst f =
  match inst with
  | Const _ | Load _ | Agg _ -> inst
  | Unop u -> Unop { u with src = f u.src }
  | Binop b -> Binop { b with lhs = f b.lhs; rhs = f b.rhs }

let read_slots program =
  let slots =
    Array.to_list program.insts
    |> List.filter_map (function
         | Load { slot; _ } | Agg { slot; _ } -> Some slot
         | Const _ | Unop _ | Binop _ -> None)
  in
  List.sort_uniq Int.compare slots

let slot_name ~slots slot =
  if slot >= 0 && slot < Array.length slots then slots.(slot)
  else Printf.sprintf "<bad slot %d>" slot

let pp_inst ~slots fmt inst =
  match inst with
  | Const { dst; value } -> Format.fprintf fmt "r%d <- const %g" dst value
  | Load { dst; slot } -> Format.fprintf fmt "r%d <- load %s" dst (slot_name ~slots slot)
  | Agg { dst; fn; slot; window_ns; param } ->
    if fn = Gr_dsl.Ast.Quantile then
      Format.fprintf fmt "r%d <- quantile[q=%g] %s over %gns" dst param
        (slot_name ~slots slot) window_ns
    else
      Format.fprintf fmt "r%d <- %s %s over %gns" dst
        (String.lowercase_ascii (Ast.agg_name fn))
        (slot_name ~slots slot) window_ns
  | Unop { dst; op; src } ->
    Format.fprintf fmt "r%d <- %s r%d" dst (Ast.unop_symbol op) src
  | Binop { dst; op; lhs; rhs } ->
    Format.fprintf fmt "r%d <- r%d %s r%d" dst lhs (Ast.binop_symbol op) rhs

let pp_program ~slots fmt program =
  Array.iter (fun inst -> Format.fprintf fmt "  %a@\n" (pp_inst ~slots) inst) program.insts;
  Format.fprintf fmt "  ret r%d@\n" program.result
