module Ast = Gr_dsl.Ast
module Typecheck = Gr_dsl.Typecheck

exception Error of Ast.pos * string

let slot_for table key =
  match Hashtbl.find_opt table key with
  | Some s -> s
  | None ->
    let s = Hashtbl.length table in
    Hashtbl.add table key s;
    s

let const_or_fail ~what (e : Ast.expr Ast.located) =
  match Typecheck.const_value e with
  | Some v -> v
  | None -> raise (Error (e.pos, what ^ " must be constant (did the spec typecheck?)"))

(* Emits instructions for [e] into [code] (reversed, paired with the
   expression's source position), returning the result register.
   Registers are numbered by emission order, so the
   single-assignment/defined-before-use invariant holds by
   construction. *)
let rec emit table code next (e : Ast.expr Ast.located) =
  let push inst =
    let dst = !next in
    incr next;
    code := (Ir.with_dst inst dst, e.Ast.pos) :: !code;
    dst
  in
  match e.node with
  | Ast.Number value -> push (Ir.Const { dst = 0; value })
  | Ast.Bool b -> push (Ir.Const { dst = 0; value = (if b then 1. else 0.) })
  | Ast.Load key -> push (Ir.Load { dst = 0; slot = slot_for table key })
  | Ast.Unop (op, sub) ->
    let src = emit table code next sub in
    push (Ir.Unop { dst = 0; op; src })
  | Ast.Binop (op, lhs, rhs) ->
    let lhs = emit table code next lhs in
    let rhs = emit table code next rhs in
    push (Ir.Binop { dst = 0; op; lhs; rhs })
  | Ast.Agg { fn; key; window; param } ->
    let window_ns = const_or_fail ~what:"aggregation window" window in
    let param =
      match param with Some q -> const_or_fail ~what:"quantile" q | None -> 0.
    in
    push (Ir.Agg { dst = 0; fn; slot = slot_for table key; window_ns; param })

let program_of ?(fold = true) table (e : Ast.expr Ast.located) =
  let code = ref [] and next = ref 0 in
  let result = emit table code next (if fold then Typecheck.const_fold e else e) in
  let emitted = Array.of_list (List.rev !code) in
  {
    Ir.insts = Array.map fst emitted;
    result;
    n_regs = !next;
    srcmap = Array.map snd emitted;
  }

let expr ?fold ~slots e = program_of ?fold slots e

(* Conjoins rules: r1 && r2 && ... as one program. *)
let rules_program table = function
  | [] -> invalid_arg "Lower.rules_program: no rules"
  | first :: rest ->
    let conj =
      List.fold_left
        (fun (acc : Ast.expr Ast.located) rule ->
          Ast.at acc.Ast.pos (Ast.Binop (Ast.And, acc, rule)))
        first rest
    in
    program_of table conj

let lower_trigger (tr : Ast.trigger Ast.located) =
  match tr.node with
  | Ast.Timer { start; interval; stop } ->
    Monitor.Timer
      {
        start_ns = int_of_float (const_or_fail ~what:"TIMER start" start);
        interval_ns = int_of_float (const_or_fail ~what:"TIMER interval" interval);
        stop_ns =
          Option.map (fun e -> int_of_float (const_or_fail ~what:"TIMER stop" e)) stop;
      }
  | Ast.Function hook -> Monitor.Function hook
  | Ast.On_change key -> Monitor.On_change key

let lower_action table (a : Ast.action Ast.located) =
  match a.node with
  | Ast.Report { message; keys } -> Monitor.Report { message; keys }
  | Ast.Replace p -> Monitor.Replace p
  | Ast.Restore p -> Monitor.Restore p
  | Ast.Retrain p -> Monitor.Retrain p
  | Ast.Deprioritize { cls; weight } ->
    Monitor.Deprioritize
      { cls; weight = int_of_float (const_or_fail ~what:"DEPRIORITIZE weight" weight) }
  | Ast.Kill cls -> Monitor.Kill cls
  | Ast.Save { key; value } ->
    (* The key being saved is also entered in the slot table so that
       dependency analysis sees reads and writes in one namespace. *)
    ignore (slot_for table key : int);
    Monitor.Save { key; value = program_of table value }

let guardrail (g : Ast.guardrail) =
  let table = Hashtbl.create 16 in
  let rule = rules_program table g.rules in
  let actions = List.map (lower_action table) g.actions in
  let triggers = List.map lower_trigger g.triggers in
  let slots = Array.make (Hashtbl.length table) "" in
  Hashtbl.iter (fun key s -> slots.(s) <- key) table;
  { Monitor.name = g.name; pos = g.pos; slots; triggers; rule; actions }

let spec gs = List.map guardrail gs
