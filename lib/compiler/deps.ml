type edge = { writer : string; reader : string; key : string }

let interference monitors =
  let edges = ref [] in
  List.iter
    (fun w ->
      let writes = Monitor.writes w in
      List.iter
        (fun r ->
          let reads = Monitor.reads r in
          List.iter
            (fun key ->
              if List.mem key reads then
                edges := { writer = w.Monitor.name; reader = r.Monitor.name; key } :: !edges)
            writes)
        monitors)
    monitors;
  List.rev !edges

let cycles monitors =
  let edges = interference monitors in
  let succs name =
    List.sort_uniq String.compare
      (List.filter_map (fun e -> if e.writer = name then Some e.reader else None) edges)
  in
  let names = List.map (fun m -> m.Monitor.name) monitors in
  (* Collect elementary cycles by DFS from each node, only keeping
     cycles whose smallest member is the start node so each is
     reported once. Monitor counts are small, so simplicity wins over
     Johnson's algorithm. *)
  let found = ref [] in
  (* [path] holds the current walk, newest first, rooted at [start].
     Restricting the walk to nodes >= start means every elementary
     cycle is discovered exactly once, rooted at its smallest member. *)
  let rec dfs start path node =
    List.iter
      (fun next ->
        if next = start then found := List.rev path :: !found
        else if (not (List.mem next path)) && String.compare start next < 0 then
          dfs start (next :: path) next)
      (succs node)
  in
  List.iter (fun s -> dfs s [ s ] s) (List.sort_uniq String.compare names);
  List.sort_uniq compare !found

let auto_triggers m = List.map (fun key -> Monitor.On_change key) (Monitor.reads m)

type agg_demand = {
  key : string;
  fn : Gr_dsl.Ast.agg;
  window_ns : float;
  param : float;
}

let aggregates (m : Monitor.t) =
  let of_program (p : Ir.program) =
    Array.to_list p.insts
    |> List.filter_map (function
         | Ir.Agg { fn; slot; window_ns; param; _ } ->
           Some { key = m.Monitor.slots.(slot); fn; window_ns; param }
         | Ir.Const _ | Ir.Load _ | Ir.Unop _ | Ir.Binop _ -> None)
  in
  let save_aggs =
    List.concat_map
      (function Monitor.Save { value; _ } -> of_program value | _ -> [])
      m.Monitor.actions
  in
  List.sort_uniq compare (of_program m.Monitor.rule @ save_aggs)
