type error =
  | Parse_error of Gr_dsl.Ast.pos * string
  | Type_errors of Gr_dsl.Typecheck.error list
  | Verify_errors of string * string list

let pp_error fmt = function
  | Parse_error (pos, msg) -> Format.fprintf fmt "parse error at %a: %s" Gr_dsl.Ast.pp_pos pos msg
  | Type_errors errs ->
    Format.fprintf fmt "type errors:";
    List.iter (fun e -> Format.fprintf fmt "@\n  %a" Gr_dsl.Typecheck.pp_error e) errs
  | Verify_errors (name, errs) ->
    Format.fprintf fmt "monitor %s rejected by the verifier:" name;
    List.iter (fun e -> Format.fprintf fmt "@\n  %s" e) errs

let source ?limits ?(optimize = true) src =
  match Gr_dsl.Parser.parse src with
  | Error (pos, msg) -> Error (Parse_error (pos, msg))
  | Ok spec -> (
    match Gr_dsl.Typecheck.check_spec spec with
    | Error errs -> Error (Type_errors errs)
    | Ok () -> (
      let monitors = Lower.spec spec in
      let monitors = if optimize then List.map Opt.optimize_monitor monitors else monitors in
      let failed =
        List.filter_map
          (fun m ->
            match Verify.verify ?limits m with
            | Ok _ -> None
            | Error errs -> Some (m.Monitor.name, errs))
          monitors
      in
      match failed with
      | [] -> Ok monitors
      | (name, errs) :: _ -> Error (Verify_errors (name, errs))))

let source_exn ?limits ?optimize src =
  match source ?limits ?optimize src with
  | Ok monitors -> monitors
  | Error e -> failwith (Format.asprintf "%a" pp_error e)

(* Spec versioning: the content digest stamped on every pushed spec
   version. FNV-1a over the raw source bytes — dependency-free,
   deterministic across hosts (unlike Hashtbl.hash, which the manual
   only promises to be stable within one runtime version), and cheap
   enough to run on every push. Not cryptographic; it identifies
   versions in audit logs, it does not authenticate them. *)
let digest source =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    source;
  Printf.sprintf "%016Lx" !h
