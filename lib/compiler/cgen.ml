module Ast = Gr_dsl.Ast

let c_identifier name =
  let buf = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char buf c
      | '0' .. '9' ->
        if i = 0 then Buffer.add_char buf '_';
        Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  if Buffer.length buf = 0 then "_anon" else Buffer.contents buf

let runtime_header =
  {|/* guardrail_rt.h — runtime ABI for generated guardrail monitors.
 *
 * A host environment (kernel module shim, eBPF skeleton, or the
 * userspace test harness) provides these entry points. Generated
 * code never allocates, loops or traps: rule and action functions
 * are straight-line over double-precision locals.
 */
#ifndef GUARDRAIL_RT_H
#define GUARDRAIL_RT_H

#include <stdint.h>

struct gr_store;  /* the global feature store (SAVE/LOAD, Sec. 4.3) */
struct gr_ctx;    /* engine context: triggers, actions, logging */

/* Feature store. */
double gr_load(struct gr_store *store, const char *key);
void gr_save(struct gr_store *store, const char *key, double value);

/* Windowed aggregates over a key's timestamped samples. */
enum gr_agg_fn {
  GR_AGG_AVG,
  GR_AGG_RATE,
  GR_AGG_COUNT,
  GR_AGG_SUM,
  GR_AGG_MIN,
  GR_AGG_MAX,
  GR_AGG_STDDEV,
  GR_AGG_QUANTILE,
  GR_AGG_DELTA,
};
double gr_agg(struct gr_store *store, const char *key, enum gr_agg_fn fn,
              uint64_t window_ns, double param);

/* Actions (Sec. 3.2 / Figure 1, right). */
void gr_report(struct gr_ctx *ctx, const char *monitor, const char *message,
               const char *const *keys, int n_keys);
void gr_replace(struct gr_ctx *ctx, const char *policy);
void gr_restore(struct gr_ctx *ctx, const char *policy);
void gr_retrain(struct gr_ctx *ctx, const char *policy);
void gr_deprioritize(struct gr_ctx *ctx, const char *cls, int weight);
void gr_kill(struct gr_ctx *ctx, const char *cls);

/* Trigger registration. */
typedef void (*gr_check_fn)(struct gr_store *store, struct gr_ctx *ctx);
#define GR_NO_STOP UINT64_MAX
void gr_timer(struct gr_ctx *ctx, uint64_t start_ns, uint64_t interval_ns,
              uint64_t stop_ns, gr_check_fn check);
void gr_on_function(struct gr_ctx *ctx, const char *hook, gr_check_fn check);
void gr_on_change(struct gr_ctx *ctx, const char *key, gr_check_fn check);

#endif /* GUARDRAIL_RT_H */
|}

let c_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let c_string s = Printf.sprintf "%S" s

let agg_enum = function
  | Ast.Avg -> "GR_AGG_AVG"
  | Ast.Rate -> "GR_AGG_RATE"
  | Ast.Count -> "GR_AGG_COUNT"
  | Ast.Sum -> "GR_AGG_SUM"
  | Ast.Min -> "GR_AGG_MIN"
  | Ast.Max -> "GR_AGG_MAX"
  | Ast.Stddev -> "GR_AGG_STDDEV"
  | Ast.Quantile -> "GR_AGG_QUANTILE"
  | Ast.Delta -> "GR_AGG_DELTA"

(* Emits the body of a program: one "double rN = ...;" per
   instruction. Comparisons and logical operators produce 0.0/1.0,
   matching the VM. Division is totalised exactly as in the VM. *)
let emit_program buf ~slots_var (p : Ir.program) =
  let reg i = Printf.sprintf "r%d" i in
  Array.iter
    (fun inst ->
      let dst = reg (Ir.dst inst) in
      let rhs =
        match inst with
        | Ir.Const { value; _ } -> c_float value
        | Ir.Load { slot; _ } ->
          Printf.sprintf "gr_load(store, %s[%d])" slots_var slot
        | Ir.Agg { fn; slot; window_ns; param; _ } ->
          Printf.sprintf "gr_agg(store, %s[%d], %s, %.0fULL, %s)" slots_var slot (agg_enum fn)
            window_ns (c_float param)
        | Ir.Unop { op; src; _ } -> (
          match op with
          | Ast.Neg -> Printf.sprintf "-%s" (reg src)
          | Ast.Abs -> Printf.sprintf "(%s < 0.0 ? -%s : %s)" (reg src) (reg src) (reg src)
          | Ast.Not -> Printf.sprintf "(double)(%s == 0.0)" (reg src))
        | Ir.Binop { op; lhs; rhs; _ } -> (
          let a = reg lhs and b = reg rhs in
          match op with
          | Ast.Add -> Printf.sprintf "%s + %s" a b
          | Ast.Sub -> Printf.sprintf "%s - %s" a b
          | Ast.Mul -> Printf.sprintf "%s * %s" a b
          | Ast.Div -> Printf.sprintf "(%s == 0.0 ? 0.0 : %s / %s)" b a b
          | Ast.Lt -> Printf.sprintf "(double)(%s < %s)" a b
          | Ast.Le -> Printf.sprintf "(double)(%s <= %s)" a b
          | Ast.Gt -> Printf.sprintf "(double)(%s > %s)" a b
          | Ast.Ge -> Printf.sprintf "(double)(%s >= %s)" a b
          | Ast.Eq -> Printf.sprintf "(double)(%s == %s)" a b
          | Ast.Ne -> Printf.sprintf "(double)(%s != %s)" a b
          | Ast.And -> Printf.sprintf "(double)(%s != 0.0 && %s != 0.0)" a b
          | Ast.Or -> Printf.sprintf "(double)(%s != 0.0 || %s != 0.0)" a b)
      in
      Buffer.add_string buf (Printf.sprintf "  const double %s = %s;\n" dst rhs))
    p.insts;
  Buffer.add_string buf (Printf.sprintf "  return r%d;\n" p.result)

let emit_action buf ~ident ~index (action : Monitor.action) =
  match action with
  | Monitor.Report { message; keys } ->
    let keys_var = Printf.sprintf "gr_%s_report_%d_keys" ident index in
    Buffer.add_string buf
      (Printf.sprintf "  static const char *const %s[] = { %s };\n" keys_var
         (if keys = [] then "0" else String.concat ", " (List.map c_string keys)));
    Buffer.add_string buf
      (Printf.sprintf "  gr_report(ctx, %s, %s, %s, %d);\n" (c_string ident) (c_string message)
         keys_var (List.length keys))
  | Monitor.Replace p ->
    Buffer.add_string buf (Printf.sprintf "  gr_replace(ctx, %s);\n" (c_string p))
  | Monitor.Restore p ->
    Buffer.add_string buf (Printf.sprintf "  gr_restore(ctx, %s);\n" (c_string p))
  | Monitor.Retrain p ->
    Buffer.add_string buf (Printf.sprintf "  gr_retrain(ctx, %s);\n" (c_string p))
  | Monitor.Deprioritize { cls; weight } ->
    Buffer.add_string buf (Printf.sprintf "  gr_deprioritize(ctx, %s, %d);\n" (c_string cls) weight)
  | Monitor.Kill cls -> Buffer.add_string buf (Printf.sprintf "  gr_kill(ctx, %s);\n" (c_string cls))
  | Monitor.Save { key; value = _ } ->
    Buffer.add_string buf
      (Printf.sprintf "  gr_save(store, %s, gr_%s_save_%d(store));\n" (c_string key) ident index)

let emit_trigger buf ~ident (trigger : Monitor.trigger) =
  match trigger with
  | Monitor.Timer { start_ns; interval_ns; stop_ns } ->
    Buffer.add_string buf
      (Printf.sprintf "  gr_timer(ctx, %dULL, %dULL, %s, gr_check_%s);\n" start_ns interval_ns
         (match stop_ns with Some s -> Printf.sprintf "%dULL" s | None -> "GR_NO_STOP")
         ident)
  | Monitor.Function hook ->
    Buffer.add_string buf
      (Printf.sprintf "  gr_on_function(ctx, %s, gr_check_%s);\n" (c_string hook) ident)
  | Monitor.On_change key ->
    Buffer.add_string buf
      (Printf.sprintf "  gr_on_change(ctx, %s, gr_check_%s);\n" (c_string key) ident)

let monitor_body buf (m : Monitor.t) =
  let ident = c_identifier m.name in
  let slots_var = Printf.sprintf "gr_%s_slots" ident in
  Buffer.add_string buf (Printf.sprintf "/* guardrail %s */\n" m.name);
  Buffer.add_string buf
    (Printf.sprintf "static const char *const %s[] = {\n%s};\n" slots_var
       (String.concat ""
          (List.map (fun s -> Printf.sprintf "  %s,\n" (c_string s)) (Array.to_list m.slots))));
  (* SAVE value programs first, so the action sequence can call them. *)
  List.iteri
    (fun index action ->
      match action with
      | Monitor.Save { value; _ } ->
        Buffer.add_string buf
          (Printf.sprintf "static double gr_%s_save_%d(struct gr_store *store) {\n" ident index);
        Buffer.add_string buf "  (void)store;\n";
        emit_program buf ~slots_var value;
        Buffer.add_string buf "}\n"
      | _ -> ())
    m.actions;
  Buffer.add_string buf
    (Printf.sprintf "static double gr_rule_%s(struct gr_store *store) {\n" ident);
  Buffer.add_string buf "  (void)store;\n";
  emit_program buf ~slots_var m.rule;
  Buffer.add_string buf "}\n";
  Buffer.add_string buf
    (Printf.sprintf
       "static void gr_actions_%s(struct gr_store *store, struct gr_ctx *ctx) {\n  (void)store;\n  (void)ctx;\n"
       ident);
  List.iteri (fun index action -> emit_action buf ~ident ~index action) m.actions;
  Buffer.add_string buf "}\n";
  Buffer.add_string buf
    (Printf.sprintf
       "static void gr_check_%s(struct gr_store *store, struct gr_ctx *ctx) {\n\
       \  if (gr_rule_%s(store) == 0.0)\n\
       \    gr_actions_%s(store, ctx);\n\
        }\n"
       ident ident ident);
  Buffer.add_string buf (Printf.sprintf "void gr_register_%s(struct gr_ctx *ctx) {\n" ident);
  List.iter (emit_trigger buf ~ident) m.triggers;
  Buffer.add_string buf "}\n\n";
  ident

let prelude =
  "/* Generated by grc — do not edit. */\n#include \"guardrail_rt.h\"\n\n"

let monitor m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf prelude;
  ignore (monitor_body buf m : string);
  Buffer.contents buf

let spec monitors =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf prelude;
  let idents = List.map (monitor_body buf) monitors in
  Buffer.add_string buf "void gr_register_all(struct gr_ctx *ctx) {\n";
  List.iter (fun ident -> Buffer.add_string buf (Printf.sprintf "  gr_register_%s(ctx);\n" ident)) idents;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
