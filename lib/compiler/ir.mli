(** Register-based intermediate representation for guardrail monitors.

    Rules and SAVE values compile to straight-line, loop-free programs
    over an infinite virtual register file of floats (booleans are
    0/1). Straight-line by construction means termination is a
    syntactic property — the monitor analogue of the eBPF verifier's
    no-backward-jumps rule — and single assignment in instruction
    order makes defined-before-use a one-pass check ({!Verify}).

    Feature-store keys are resolved to integer {e slots} into the
    enclosing monitor's slot table, so the runtime never hashes
    strings on the hot path. *)

type slot = int
(** Index into the monitor's slot table. *)

type inst =
  | Const of { dst : int; value : float }
  | Load of { dst : int; slot : slot }
      (** Latest value of a key; 0 when the key has never been saved. *)
  | Agg of { dst : int; fn : Gr_dsl.Ast.agg; slot : slot; window_ns : float; param : float }
      (** Windowed aggregate over a key's timestamped samples.
          [param] is QUANTILE's q; 0 for other functions. *)
  | Unop of { dst : int; op : Gr_dsl.Ast.unop; src : int }
  | Binop of { dst : int; op : Gr_dsl.Ast.binop; lhs : int; rhs : int }

type program = {
  insts : inst array;
  result : int;  (** register holding the program's value *)
  n_regs : int;
  srcmap : Gr_dsl.Ast.pos array;
      (** Source position of each instruction, parallel to [insts].
          Either the same length as [insts] (programs lowered from
          source) or empty (programs built programmatically); the
          optimiser keeps it aligned through CSE/DCE. *)
}

val pos_of : program -> int -> Gr_dsl.Ast.pos option
(** Source position of instruction [i], when the program carries a
    source map. *)

val inst_cost_ns : inst -> float
(** Static cost model: rough nanoseconds per instruction on the
    simulated in-kernel interpreter. This table is the single source
    of truth — the runtime ({!Gr_runtime.Vm.static_cost_ns}), the
    verifier's stats and the lint cost-budget analysis all charge
    from it. Aggregates are O(1) amortized since the feature store
    streams registered demands; only QUANTILE still pays a ranked
    suffix scan surcharge. *)

val static_cost_ns : program -> float
(** Sum of {!inst_cost_ns} over the program — the per-check cost
    excluding data-dependent sample expiry. *)

val dst : inst -> int
val operands : inst -> int list

val use_counts : program -> int array
(** Reader count per register (the program result counts as one use).
    The execution-tier specializers fuse away an intermediate register
    only when its count is exactly 1. *)


val with_dst : inst -> int -> inst
val map_operands : inst -> (int -> int) -> inst

val read_slots : program -> slot list
(** Sorted, deduplicated slots the program reads (Load or Agg). *)

val pp_inst : slots:string array -> Format.formatter -> inst -> unit
val pp_program : slots:string array -> Format.formatter -> program -> unit
(** Human-readable disassembly, used by the [grc] CLI. *)
