(** End-to-end compilation driver: source text to verified monitors.

    Pipeline: parse -> typecheck -> constant fold -> lower ->
    optimise (CSE + DCE) -> verify. This is the function behind both
    the public {!Guardrails} facade and the [grc] CLI. *)

type error =
  | Parse_error of Gr_dsl.Ast.pos * string
  | Type_errors of Gr_dsl.Typecheck.error list
  | Verify_errors of string * string list
      (** monitor name and its verifier findings *)

val pp_error : Format.formatter -> error -> unit

val source :
  ?limits:Verify.limits -> ?optimize:bool -> string -> (Monitor.t list, error) result
(** [optimize] defaults to [true]; the overhead ablation compiles
    with [false] to quantify what CSE/DCE buy. *)

val source_exn : ?limits:Verify.limits -> ?optimize:bool -> string -> Monitor.t list
(** @raise Failure with a rendered error message. *)

val digest : string -> string
(** Content digest of a spec source (16 hex chars, FNV-1a 64).
    Deterministic across hosts; identifies spec versions in the
    serving lifecycle's audit log. Not cryptographic. *)
