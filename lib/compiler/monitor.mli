(** Compiled guardrail monitors.

    A monitor is the loadable artifact the paper's framework installs
    in the kernel: resolved triggers, a verified rule program whose
    value is the property ("true" = healthy), and resolved action
    descriptors to run on violation. *)

type trigger =
  | Timer of {
      start_ns : int;
      interval_ns : int;
      stop_ns : int option;
    }
  | Function of string  (** kernel hook name *)
  | On_change of string  (** feature-store key *)

type action =
  | Report of { message : string; keys : string list }
  | Replace of string
  | Restore of string
  | Retrain of string
  | Deprioritize of { cls : string; weight : int }
  | Kill of string
  | Save of { key : string; value : Ir.program }
      (** The value program shares the monitor's slot table. *)

type t = {
  name : string;
  pos : Gr_dsl.Ast.pos;
      (** source position of the guardrail header; [{line = 0; col =
          0}] for monitors built programmatically *)
  slots : string array;  (** slot index -> feature-store key *)
  triggers : trigger list;
  rule : Ir.program;  (** property holds iff the result is non-zero *)
  actions : action list;
}

val static_cost_ns : t -> float
(** {!Ir.static_cost_ns} summed over the rule and every SAVE value
    program — the monitor's per-check cost charged against a hook's
    budget by the lint cost analysis. *)

val reads : t -> string list
(** Keys the rule (and SAVE value programs) read; sorted, unique. *)

val writes : t -> string list
(** Keys written by SAVE actions; sorted, unique. *)

val qualify : node_id:int -> t -> t
(** Copy of the monitor with every node-local key (slots, ON_CHANGE
    triggers, SAVE and REPORT keys) {e and the monitor name} rewritten
    to its {!Gr_dsl.Ast.node_key} form. Monitors from several fleet
    nodes can then be linted together as one deployment without
    conflating same-named node-local keys — and diagnostics attribute
    to the right node's file, since the qualified name is unique per
    node. [GLOBAL] keys — unqualified by design — still surface
    genuine cross-node conflicts. *)

val pp : Format.formatter -> t -> unit
(** Disassembly of the whole monitor. *)
