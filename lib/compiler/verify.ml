type limits = {
  max_insts : int;
  max_regs : int;
  max_slots : int;
  max_actions : int;
  max_window_ns : float;
}

let default_limits =
  {
    max_insts = 4096;
    max_regs = 256;
    max_slots = 64;
    max_actions = 16;
    max_window_ns = 600e9;
  }

type stats = {
  rule_insts : int;
  total_insts : int;
  n_slots : int;
  n_actions : int;
  est_cost_ns : float;
}

let verify_program ~limits ~what ~n_slots (p : Ir.program) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errs := (what ^ ": " ^ m) :: !errs) fmt in
  let n = Array.length p.insts in
  if n > limits.max_insts then err "program too long (%d > %d instructions)" n limits.max_insts;
  if p.n_regs > limits.max_regs then err "too many registers (%d > %d)" p.n_regs limits.max_regs;
  if p.n_regs <> n then err "register count %d does not match instruction count %d" p.n_regs n;
  if n = 0 then err "empty program"
  else if p.result < 0 || p.result >= n then err "result register r%d undefined" p.result;
  Array.iteri
    (fun i inst ->
      if Ir.dst inst <> i then err "instruction %d writes r%d (must write r%d)" i (Ir.dst inst) i;
      List.iter
        (fun r -> if r < 0 || r >= i then err "instruction %d reads r%d before definition" i r)
        (Ir.operands inst);
      match inst with
      | Ir.Load { slot; _ } | Ir.Agg { slot; _ } when slot < 0 || slot >= n_slots ->
        err "instruction %d references slot %d outside the slot table" i slot
      | Ir.Agg { window_ns; param; fn; _ } ->
        if not (window_ns > 0.) then err "instruction %d has non-positive window" i;
        if window_ns > limits.max_window_ns then
          err "instruction %d window %.0fns exceeds limit %.0fns" i window_ns
            limits.max_window_ns;
        if fn = Gr_dsl.Ast.Quantile && not (param > 0. && param < 1.) then
          err "instruction %d quantile parameter %g outside (0, 1)" i param
      | Ir.Const _ | Ir.Load _ | Ir.Unop _ | Ir.Binop _ -> ())
    p.insts;
  (!errs, n, Ir.static_cost_ns p)

let verify ?(limits = default_limits) (m : Monitor.t) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun msg -> errs := msg :: !errs) fmt in
  let n_slots = Array.length m.slots in
  if n_slots > limits.max_slots then
    err "too many feature-store slots (%d > %d)" n_slots limits.max_slots;
  if m.triggers = [] then err "monitor has no triggers";
  List.iter
    (function
      | Monitor.Timer { interval_ns; _ } when interval_ns <= 0 ->
        err "timer trigger has non-positive interval"
      | Monitor.Timer { start_ns; _ } when start_ns < 0 -> err "timer trigger starts in the past"
      | Monitor.Timer { start_ns; stop_ns = Some stop; _ } when stop <= start_ns ->
        err "timer trigger stops before it starts"
      | Monitor.Function hook when hook = "" -> err "FUNCTION trigger with empty hook name"
      | Monitor.On_change key when key = "" -> err "ON_CHANGE trigger with empty key"
      | Monitor.Timer _ | Monitor.Function _ | Monitor.On_change _ -> ())
    m.triggers;
  let n_actions = List.length m.actions in
  if n_actions = 0 then err "monitor has no actions";
  if n_actions > limits.max_actions then
    err "too many actions (%d > %d)" n_actions limits.max_actions;
  let rule_errs, rule_insts, rule_cost =
    verify_program ~limits ~what:"rule" ~n_slots m.rule
  in
  errs := rule_errs @ !errs;
  let total_insts = ref rule_insts and total_cost = ref rule_cost in
  (* Duplicate SAVE keys within one monitor: the runtime executes
     actions in order, so the last write silently wins — reject at
     load time instead of losing a write at runtime. *)
  let save_keys = Hashtbl.create 4 in
  List.iter
    (fun action ->
      match action with
      | Monitor.Save { key; value } ->
        if key = "" then err "SAVE with empty key";
        if Hashtbl.mem save_keys key then
          err "duplicate SAVE key %S (last write wins at runtime)" key
        else Hashtbl.add save_keys key ();
        let save_errs, n, cost =
          verify_program ~limits ~what:(Printf.sprintf "save(%s)" key) ~n_slots value
        in
        errs := save_errs @ !errs;
        total_insts := !total_insts + n;
        total_cost := !total_cost +. cost
      | Monitor.Replace p | Monitor.Restore p | Monitor.Retrain p ->
        if p = "" then err "action with empty policy name"
      | Monitor.Deprioritize { cls; weight } ->
        if cls = "" then err "DEPRIORITIZE with empty class";
        if weight < 1 then err "DEPRIORITIZE weight %d below 1" weight
      | Monitor.Kill cls -> if cls = "" then err "KILL with empty class"
      | Monitor.Report { message; _ } -> if message = "" then err "REPORT with empty message")
    m.actions;
  match !errs with
  | [] ->
    Ok
      {
        rule_insts;
        total_insts = !total_insts;
        n_slots;
        n_actions;
        est_cost_ns = !total_cost;
      }
  | errors -> Error (List.rev errors)
