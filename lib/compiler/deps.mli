(** Dependency analysis over compiled monitors.

    Two uses, both from the paper's §6 discussion:

    - {b Dependency-triggered checking}: a monitor's read set is the
      exact set of feature-store keys whose updates can change its
      rule; the runtime's ON_CHANGE machinery uses {!auto_triggers}
      to check a property "only when relevant system state changes"
      instead of on a timer.

    - {b Feedback-loop detection}: deploying multiple guardrails can
      oscillate when preventing one violation triggers another. A
      monitor that SAVEs a key another monitor reads is an edge in
      the interference graph; cycles in that graph are potential
      feedback loops, reported at compile time. *)

type edge = {
  writer : string;  (** monitor name *)
  reader : string;  (** monitor name *)
  key : string;  (** store key carrying the interference *)
}

val interference : Monitor.t list -> edge list
(** Every (writer, reader) pair connected through a key; includes
    self-loops (a monitor reading a key it writes). *)

val cycles : Monitor.t list -> string list list
(** Monitor-name cycles in the interference graph (each cycle listed
    once, starting from its lexicographically smallest member).
    A self-loop yields a singleton cycle. *)

val auto_triggers : Monitor.t -> Monitor.trigger list
(** ON_CHANGE triggers covering the monitor's full read set — the
    dependency-tracking alternative to its TIMER triggers. *)

type agg_demand = {
  key : string;  (** feature-store key (resolved through the slot table) *)
  fn : Gr_dsl.Ast.agg;
  window_ns : float;
  param : float;
}

val aggregates : Monitor.t -> agg_demand list
(** Every distinct windowed aggregate the monitor's rule and SAVE
    value programs can ask the feature store for, with slots resolved
    to key names — exactly the demands the runtime registers for
    incremental (streaming) aggregation at install time. Sorted,
    unique per monitor. *)
