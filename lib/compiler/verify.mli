(** Static verifier for compiled monitors.

    The paper compiles guardrails to eBPF programs or kernel modules;
    what makes that safe is the loader-side verifier. This is the
    analogue for monitor IR. A monitor that passes verification
    cannot crash, loop, or touch state outside the feature store:

    - programs are straight-line (no jump instructions exist in the
      IR) and bounded in length — termination in O(length);
    - registers are written exactly once, by the instruction with
      their index, and read only after being written;
    - every slot reference is within the monitor's slot table;
    - aggregation windows are positive and bounded (unbounded windows
      would make per-check cost grow without limit);
    - quantile parameters lie in (0, 1);
    - division is total by VM definition (x/0 = 0), so no arithmetic
      traps;
    - action arguments are sane (weights >= 1, SAVE value programs
      verify recursively, non-empty policy/class names);
    - no two SAVE actions in one monitor write the same key (the
      runtime executes actions in order, so the earlier write would
      silently be lost).

    [stats] also carries a static worst-case cost estimate used by
    the P5 overhead property and the overhead ablation; it is summed
    from the single cost table in {!Ir.inst_cost_ns}. *)

type limits = {
  max_insts : int;  (** per program; default 4096 *)
  max_regs : int;  (** default 256 *)
  max_slots : int;  (** default 64 *)
  max_actions : int;  (** default 16 *)
  max_window_ns : float;  (** default 600s *)
}

val default_limits : limits

type stats = {
  rule_insts : int;
  total_insts : int;  (** rule + SAVE value programs *)
  n_slots : int;
  n_actions : int;
  est_cost_ns : float;
      (** static per-check cost estimate: {!Ir.static_cost_ns} over
          the rule and every SAVE value program *)
}

val verify : ?limits:limits -> Monitor.t -> (stats, string list) result
(** All violations found, not just the first. *)
