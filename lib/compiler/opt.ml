(* A value key identifies an instruction's computation up to its
   operand registers; two instructions with equal keys compute equal
   values because programs are single-assignment and evaluation is
   deterministic. *)
type value_key =
  | Kconst of float
  | Kload of int
  | Kagg of Gr_dsl.Ast.agg * int * float * float
  | Kunop of Gr_dsl.Ast.unop * int
  | Kbinop of Gr_dsl.Ast.binop * int * int

let key_of subst inst =
  match inst with
  | Ir.Const { value; _ } -> Kconst value
  | Ir.Load { slot; _ } -> Kload slot
  | Ir.Agg { fn; slot; window_ns; param; _ } -> Kagg (fn, slot, window_ns, param)
  | Ir.Unop { op; src; _ } -> Kunop (op, subst src)
  | Ir.Binop { op; lhs; rhs; _ } -> Kbinop (op, subst lhs, subst rhs)

let cse (p : Ir.program) =
  let canonical = Array.init p.n_regs (fun i -> i) in
  let subst r = canonical.(r) in
  let table = Hashtbl.create 32 in
  let insts =
    Array.map
      (fun inst ->
        let inst = Ir.map_operands inst subst in
        let key = key_of (fun r -> r) inst in
        (match Hashtbl.find_opt table key with
        | Some existing -> canonical.(Ir.dst inst) <- existing
        | None -> Hashtbl.add table key (Ir.dst inst));
        inst)
      p.insts
  in
  { p with insts; result = subst p.result }

let dce (p : Ir.program) =
  let live = Array.make p.n_regs false in
  live.(p.result) <- true;
  (* Single backward pass suffices: operands always precede dsts. *)
  for i = Array.length p.insts - 1 downto 0 do
    let inst = p.insts.(i) in
    if live.(Ir.dst inst) then List.iter (fun r -> live.(r) <- true) (Ir.operands inst)
  done;
  let remap = Array.make p.n_regs (-1) in
  let next = ref 0 in
  let has_srcmap = Array.length p.srcmap = Array.length p.insts in
  let kept =
    Array.to_list p.insts
    |> List.mapi (fun i inst -> (i, inst))
    |> List.filter_map (fun (i, inst) ->
           if not live.(Ir.dst inst) then None
           else begin
             let inst = Ir.map_operands inst (fun r -> remap.(r)) in
             let dst = !next in
             incr next;
             remap.(Ir.dst inst) <- dst;
             Some (Ir.with_dst inst dst, i)
           end)
  in
  {
    Ir.insts = Array.of_list (List.map fst kept);
    result = remap.(p.result);
    n_regs = !next;
    srcmap =
      (if has_srcmap then Array.of_list (List.map (fun (_, i) -> p.srcmap.(i)) kept)
       else p.srcmap);
  }

let optimize p = dce (cse p)

let optimize_monitor (m : Monitor.t) =
  {
    m with
    rule = optimize m.rule;
    actions =
      List.map
        (function
          | Monitor.Save { key; value } -> Monitor.Save { key; value = optimize value }
          | other -> other)
        m.actions;
  }
