(** C backend: emits a kernel-loadable C translation of a verified
    monitor.

    The paper compiles guardrails "into monitors capable of running
    within the kernel, either as eBPF programs or as kernel modules".
    The simulator in this repository plays the role of the kernel for
    the experiments; this module is the bridge to the real target: a
    verified {!Monitor.t} becomes a self-contained C compilation unit
    against a small runtime ABI ({!runtime_header}) that a kernel
    module or an eBPF skeleton provides (feature-store access,
    windowed aggregates, the A1-A4 action entry points, trigger
    registration).

    The emitted code preserves the IR's guarantees: each function is
    straight-line, single-assignment into [double] locals, and free
    of loops, so it is as analysable as the IR that produced it.
    Generated code compiles with [gcc -Wall -Werror] (checked in the
    test suite). *)

val runtime_header : string
(** Contents of [guardrail_rt.h]: the ABI the generated code links
    against. Emit once per build. *)

val monitor : Monitor.t -> string
(** C source for one monitor: a slot table, one rule function, one
    action sequence, per-SAVE value functions, and a registration
    entry point [gr_register_<name>] that arms the monitor's
    triggers. Precondition: the monitor passed {!Verify.verify}. *)

val spec : Monitor.t list -> string
(** One compilation unit holding several monitors plus a combined
    [gr_register_all]. *)

val c_identifier : string -> string
(** Mangles a guardrail name (possibly hyphenated) into a valid C
    identifier; exposed for tests. *)
