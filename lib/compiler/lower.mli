(** Lowering from the typed AST to monitor IR.

    Precondition: the guardrail passed {!Gr_dsl.Typecheck.check_spec}.
    Lowering constant-folds first (so [TIMER(0, 2 * 500ms)] resolves),
    assigns feature-store keys to slots, flattens expressions to
    single-assignment register code (naively — one register per AST
    node; {!Opt} cleans up), and conjoins multiple rules into one
    program. *)

exception Error of Gr_dsl.Ast.pos * string
(** Raised only on inputs that violate the precondition (e.g. a
    non-constant TIMER argument). *)

val guardrail : Gr_dsl.Ast.guardrail -> Monitor.t
val spec : Gr_dsl.Ast.spec -> Monitor.t list

val expr :
  ?fold:bool ->
  slots:(string, int) Hashtbl.t ->
  Gr_dsl.Ast.expr Gr_dsl.Ast.located ->
  Ir.program
(** Lowers one expression against a (mutable, growing) slot table;
    exposed for tests. [fold] (default [true]) runs
    {!Gr_dsl.Typecheck.const_fold} first; the folding-equivalence
    property compiles with [false] to compare against the folded
    pipeline. *)
