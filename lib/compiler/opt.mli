(** IR optimisation passes.

    Monitors run on every trigger firing, potentially on hot kernel
    paths (FUNCTION triggers), so redundant work matters: a rule like
    [AVG(lat, 1s) > 50 && AVG(lat, 1s) < 5000] must scan the sample
    window once, not twice. Passes preserve evaluation semantics
    exactly; the test suite checks optimised and unoptimised programs
    agree on random stores.

    Aggregations are pure within a single evaluation (the store does
    not change mid-program), so they are eligible for CSE. *)

val cse : Ir.program -> Ir.program
(** Value-numbering common-subexpression elimination. Leaves dead
    instructions behind; run {!dce} afterwards. *)

val dce : Ir.program -> Ir.program
(** Removes instructions not reachable from the result register and
    renumbers so that register [i] is defined by instruction [i]. *)

val optimize : Ir.program -> Ir.program
(** [dce (cse p)], the standard pipeline. *)

val optimize_monitor : Monitor.t -> Monitor.t
(** Optimises the rule and every SAVE value program. *)
