(** Discrete-event simulation engine.

    The simulated kernel, its devices, the workload generators and the
    guardrail TIMER triggers all advance on a single virtual clock
    owned by this engine. Events fire in timestamp order; ties are
    broken by scheduling order (FIFO), which keeps runs deterministic.

    Callbacks receive the engine so they can schedule follow-up events;
    an exception escaping a callback aborts the run (simulated kernels
    should not swallow bugs). *)

type t

val create : unit -> t

val set_tracer : t -> Gr_trace.Tracer.t -> unit
(** Attach a tracer: each dispatched event emits an instant trace
    event (category ["sim"]) when tracing is enabled. *)

val clear_tracer : t -> unit
(** Detach the tracer; subsequent dispatches are untraced. *)

val tracer : t -> Gr_trace.Tracer.t option
(** The currently attached tracer, if any — lets a deployment detect
    that attaching would steal the channel from another one. *)

val now : t -> Gr_util.Time_ns.t
(** Current virtual time. Starts at [Time_ns.zero]. *)

type handle
(** A scheduled (possibly periodic) event that can be cancelled. *)

val schedule_at : t -> Gr_util.Time_ns.t -> (t -> unit) -> handle
(** [schedule_at t time fn] fires [fn] when the clock reaches [time].
    Scheduling in the past raises [Invalid_argument]. *)

val schedule_after : t -> Gr_util.Time_ns.t -> (t -> unit) -> handle
(** [schedule_after t delay fn] fires [fn] at [now t + delay]. *)

val every :
  t ->
  ?start:Gr_util.Time_ns.t ->
  ?stop:Gr_util.Time_ns.t ->
  interval:Gr_util.Time_ns.t ->
  (t -> unit) ->
  handle
(** Periodic event: first firing at [start] (default: [now + interval]),
    then every [interval], never at or after [stop] if given. This is
    the substrate for the guardrail TIMER trigger. Requires
    [interval > 0]. *)

val cancel : handle -> unit
(** Idempotent; a cancelled event never fires again. *)

val step : t -> bool
(** Runs the single earliest pending event; [false] if none remain. *)

val next_event_time : t -> Gr_util.Time_ns.t option
(** Timestamp of the next event {!step} would actually run, skipping
    (and reclaiming) cancelled tombstones — so a caller can drive the
    engine one event at a time up to a limit and examine invariants
    between events, as the fault-injection soak does. Previously a
    tombstone at the queue head could carry [run_until] one live
    event past its limit; peeking through this function fixes that. *)

val run_until : t -> Gr_util.Time_ns.t -> unit
(** Runs events with timestamp [<= limit], then advances the clock to
    [limit]. *)

val run : t -> unit
(** Runs until the queue is empty. Periodic events without [stop] make
    this diverge; prefer [run_until] in experiments. *)

val run_epochs :
  pool:Pool.t ->
  epoch:Gr_util.Time_ns.t ->
  limit:Gr_util.Time_ns.t ->
  at_barrier:(Gr_util.Time_ns.t -> unit) ->
  t array ->
  unit
(** [run_epochs ~pool ~epoch ~limit ~at_barrier engines] advances all
    [engines] in lock-step sim-time epochs: each epoch, every engine
    is [run_until] the next boundary in parallel on [pool], then
    [at_barrier boundary] runs sequentially on the calling domain.
    This is the parallel fleet's substrate (docs/PARALLEL.md): engines
    must own disjoint event sets and buffer any cross-engine effect
    for the barrier callback. Epochs start at the max of the engines'
    clocks and the last boundary is exactly [limit]. Requires
    [epoch > 0]. @raise Invalid_argument otherwise. *)

val run_chunked :
  t ->
  epoch:Gr_util.Time_ns.t ->
  limit:Gr_util.Time_ns.t ->
  at_barrier:(Gr_util.Time_ns.t -> unit) ->
  unit
(** Single-engine sibling of {!run_epochs}: advances the engine in
    epoch-sized chunks with [at_barrier] called at every boundary
    (the last exactly [limit]). Since {!run_until} fires every event
    [<= boundary] before clamping the clock, the event stream is
    byte-identical to one [run_until limit] — barriers are pure
    decision points. This is the promotion decision point for
    single-deployment (--nodes 1) spec rollouts. Requires
    [epoch > 0]. @raise Invalid_argument otherwise. *)

val pending : t -> int
(** Number of queued (non-cancelled) events. *)

val events_fired : t -> int
(** Total callbacks executed since creation; used by overhead
    accounting tests. *)
