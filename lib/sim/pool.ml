(* A tiny fork-join pool over OCaml 5 domains.

   The epoch-barrier fleet runs one task per node per epoch; tasks are
   claimed work-stealing style off a shared atomic counter, so the
   mapping from node to domain is load-dependent — which is exactly why
   the fleet protocol requires node tasks to be mutually independent
   and to buffer cross-node effects for the sequential barrier phase.

   Workers are spawned once per pool and parked on a condition
   variable between epochs: spawning a domain costs far more than an
   epoch's worth of node events, so per-epoch spawn would erase the
   parallelism being bought. The main domain participates in every
   round, so a pool of [domains] executes on [domains] cores using
   [domains - 1] spawned workers; [domains = 1] degenerates to a plain
   loop with no domains, no locks and no atomics. *)

type job = {
  f : int -> unit;
  n : int;
  next : int Atomic.t; (* next unclaimed task index *)
  mutable live : int; (* workers still inside this round *)
  mutable error : (int * exn) option; (* lowest task index that raised *)
}

type t = {
  domains : int;
  mutex : Mutex.t;
  wake : Condition.t; (* workers wait here for a round (or shutdown) *)
  done_ : Condition.t; (* main waits here for round completion *)
  mutable job : job option;
  mutable generation : int; (* bumped per round so workers can't rejoin one *)
  mutable shutdown : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.domains

let run_tasks mutex job =
  (* Claim task indices until the counter runs dry. A task that raises
     poisons the round; recording happens under the pool mutex and the
     lowest raising index wins, so the error re-raised in the main
     domain is deterministic even when several tasks fail. *)
  let rec claim () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      (match job.f i with
      | () -> ()
      | exception e ->
        Mutex.lock mutex;
        (match job.error with
        | Some (j, _) when j <= i -> ()
        | _ -> job.error <- Some (i, e));
        Mutex.unlock mutex);
      claim ()
    end
  in
  claim ()

let worker t () =
  let gen = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while (not t.shutdown) && (t.job = None || t.generation = !gen) do
      Condition.wait t.wake t.mutex
    done;
    if t.shutdown then Mutex.unlock t.mutex
    else begin
      let job = Option.get t.job in
      gen := t.generation;
      Mutex.unlock t.mutex;
      run_tasks t.mutex job;
      Mutex.lock t.mutex;
      job.live <- job.live - 1;
      if job.live = 0 then Condition.broadcast t.done_;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      domains;
      mutex = Mutex.create ();
      wake = Condition.create ();
      done_ = Condition.create ();
      job = None;
      generation = 0;
      shutdown = false;
      workers = [];
    }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (worker t));
  t

let run t f n =
  if n = 0 then ()
  else if t.domains = 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    let job = { f; n; next = Atomic.make 0; live = t.domains; error = None } in
    Mutex.lock t.mutex;
    t.job <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    (* The main domain works the same queue, then joins the round. *)
    run_tasks t.mutex job;
    Mutex.lock t.mutex;
    job.live <- job.live - 1;
    while job.live > 0 do
      Condition.wait t.done_ t.mutex
    done;
    t.job <- None;
    let error = job.error in
    Mutex.unlock t.mutex;
    match error with None -> () | Some (_, e) -> raise e
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.shutdown <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
