open Gr_util

type t = {
  mutable clock : Time_ns.t;
  mutable seq : int;
  mutable fired : int;
  mutable cancelled : int;
  queue : event Heap.t;
  mutable tracer : Gr_trace.Tracer.t option;
}

and event = {
  time : Time_ns.t;
  order : int;
  run : t -> unit;
  mutable live : bool;
}

type handle = { mutable target : event }

let compare_event a b =
  match Time_ns.compare a.time b.time with 0 -> Int.compare a.order b.order | c -> c

let create () =
  {
    clock = Time_ns.zero;
    seq = 0;
    fired = 0;
    cancelled = 0;
    queue = Heap.create ~cmp:compare_event;
    tracer = None;
  }

let set_tracer t tracer = t.tracer <- Some tracer
let clear_tracer t = t.tracer <- None
let tracer t = t.tracer

let now t = t.clock

let enqueue t time run =
  if Time_ns.compare time t.clock < 0 then
    invalid_arg "Engine.schedule_at: time is in the past";
  let ev = { time; order = t.seq; run; live = true } in
  t.seq <- t.seq + 1;
  Heap.add t.queue ev;
  ev

let schedule_at t time fn = { target = enqueue t time fn }
let schedule_after t delay fn = schedule_at t (Time_ns.add t.clock delay) fn

let every t ?start ?stop ~interval fn =
  if interval <= 0 then invalid_arg "Engine.every: interval must be positive";
  let first =
    match start with
    | Some s -> Time_ns.max s t.clock
    | None -> Time_ns.add t.clock interval
  in
  let allowed time = match stop with None -> true | Some s -> Time_ns.compare time s < 0 in
  let rec tick handle time engine =
    fn engine;
    let next = Time_ns.add time interval in
    if allowed next then handle.target <- enqueue engine next (tick handle next)
  in
  if allowed first then begin
    let rec handle = { target = ev }
    and ev = { time = first; order = t.seq; run = (fun e -> tick handle first e); live = true } in
    t.seq <- t.seq + 1;
    Heap.add t.queue ev;
    handle
  end
  else { target = { time = first; order = -1; run = (fun _ -> ()); live = false } }

let cancel handle = handle.target.live <- false

(* Discard cancelled tombstones sitting at the head of the queue so
   that peeking reports the next event that will actually run — a
   tombstone's timestamp must not drive [run_until]'s limit check or a
   caller's own stepping loop past the limit. *)
let rec drop_tombstones t =
  match Heap.peek t.queue with
  | Some ev when not ev.live ->
    ignore (Heap.pop t.queue : event option);
    t.cancelled <- t.cancelled + 1;
    drop_tombstones t
  | Some _ | None -> ()

let next_event_time t =
  drop_tombstones t;
  match Heap.peek t.queue with Some ev -> Some ev.time | None -> None

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    if not ev.live then begin
      t.cancelled <- t.cancelled + 1;
      step t
    end
    else begin
      t.clock <- ev.time;
      t.fired <- t.fired + 1;
      (match t.tracer with
      | Some tr when Gr_trace.Tracer.enabled tr ->
        (* Each dispatch roots a causal tree: everything the handler
           does (hook fires, checks, actions, saves) parents back to
           this span, directly or transitively. *)
        let span = Gr_trace.Tracer.fresh_span tr in
        Gr_trace.Tracer.instant tr ~cat:"sim"
          ~args:[ ("seq", Gr_trace.Event.Int ev.order) ]
          ~span "dispatch";
        let prev = Gr_trace.Tracer.current_span tr in
        Gr_trace.Tracer.set_current tr (Some span);
        Fun.protect
          ~finally:(fun () -> Gr_trace.Tracer.set_current tr prev)
          (fun () -> ev.run t)
      | _ -> ev.run t);
      true
    end

let run_until t limit =
  let continue = ref true in
  while !continue do
    match next_event_time t with
    | Some time when Time_ns.compare time limit <= 0 -> ignore (step t : bool)
    | Some _ | None -> continue := false
  done;
  if Time_ns.compare t.clock limit < 0 then t.clock <- limit

let run t = while step t do () done

let run_epochs ~pool ~epoch ~limit ~at_barrier engines =
  (* Lock-step epoch driver for the parallel fleet (docs/PARALLEL.md):
     every engine in [engines] advances to the same epoch boundary on
     the pool — each owns a disjoint event set, so the only sharing is
     the barrier itself — then [at_barrier] runs sequentially on the
     calling domain to apply buffered cross-engine effects and advance
     whatever sequential engine (the fleet's control plane) rides
     between the boundaries. Determinism does not depend on the pool's
     task-to-domain mapping because each engine's event stream is
     node-local by construction. *)
  if Time_ns.compare epoch Time_ns.zero <= 0 then
    invalid_arg "Engine.run_epochs: epoch must be positive";
  let n = Array.length engines in
  let start = Array.fold_left (fun acc e -> Time_ns.max acc (now e)) Time_ns.zero engines in
  let t = ref start in
  while Time_ns.compare !t limit < 0 do
    let boundary = Time_ns.min (Time_ns.add !t epoch) limit in
    Pool.run pool (fun i -> run_until engines.(i) boundary) n;
    at_barrier boundary;
    t := boundary
  done

let run_chunked t ~epoch ~limit ~at_barrier =
  (* Single-engine sibling of [run_epochs]: advance one engine in
     epoch-sized chunks, calling [at_barrier] at every boundary.
     Because [run_until] fires every event <= the boundary and then
     just clamps the clock, the event stream (and any trace of it) is
     byte-identical to one big [run_until limit] — the barrier is a
     pure decision point, which is what lets grc serve's rollout
     state machine ride a --nodes 1 deployment without perturbing
     it. The last boundary is exactly [limit]. *)
  if Time_ns.compare epoch Time_ns.zero <= 0 then
    invalid_arg "Engine.run_chunked: epoch must be positive";
  let t' = ref (now t) in
  while Time_ns.compare !t' limit < 0 do
    let boundary = Time_ns.min (Time_ns.add !t' epoch) limit in
    run_until t boundary;
    at_barrier boundary;
    t' := boundary
  done

let pending t =
  (* Heap may contain cancelled tombstones; count live ones. *)
  List.length (List.filter (fun ev -> ev.live) (Heap.to_sorted_list t.queue))

let events_fired t = t.fired
