(** A small fork-join pool over OCaml 5 domains.

    Built for the epoch-barrier fleet ({!Gr_core.Fleet} via
    docs/PARALLEL.md): each epoch runs one task per node, tasks claim
    indices work-stealing style off a shared counter, and the caller
    blocks until every task has finished — a full barrier. Workers are
    spawned once at {!create} and parked between rounds, so per-epoch
    overhead is two lock/broadcast handshakes, not a domain spawn.

    Tasks of one round MUST be mutually independent: the pool gives no
    ordering between them and the task-to-domain mapping is
    load-dependent. Anything order-sensitive belongs in the sequential
    barrier phase between rounds, on the calling domain.

    The calling domain participates in every round, so [~domains:k]
    uses [k] cores with [k - 1] spawned domains, and [~domains:1] is a
    plain sequential loop (no domains, no locks). *)

type t

val create : domains:int -> t
(** Spawn [domains - 1] parked workers. Requires [domains >= 1].
    @raise Invalid_argument otherwise. Always pair with {!shutdown}
    (or use {!with_pool}): live workers keep the process from
    exiting. *)

val size : t -> int
(** The configured domain count (including the calling domain). *)

val run : t -> (int -> unit) -> int -> unit
(** [run t f n] executes [f 0 .. f (n-1)] across the pool and returns
    once all have completed (barrier). If any task raises, the round
    still drains and the exception of the lowest raising index is
    re-raised in the calling domain. Not reentrant: one round at a
    time. *)

val shutdown : t -> unit
(** Wake and join all workers. The pool must not be used afterwards. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and shuts it
    down when [f] returns or raises. *)
