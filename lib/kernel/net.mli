(** Network path model for congestion control.

    A single bottleneck link with a drop-tail queue, driven in fixed
    ticks: each tick the flow offers [rate] worth of traffic; the
    link drains at capacity; excess accumulates in the queue (adding
    queueing delay to the measured RTT) and overflows as loss once
    the queue is full. The congestion-controller slot is consulted
    every tick with the smoothed measurements and returns a rate
    multiplier.

    This is the substrate behind the paper's congestion-control
    examples: §2's "a learned congestion control may lead to a sudden
    drop in bandwidth utilization and fail to recover from it", and
    Figure 1's P2 row. A well-behaved controller (the {!aimd}
    fallback, or a trained {!Gr_policy.Cc_controller}) converges near
    capacity; an unstable one oscillates and collapses utilisation —
    observable on the ["net:tick"] hook.

    Hook fired every tick: ["net:tick"] with [rtt_ms], [loss],
    [rate_mbps], [util] (delivered/capacity, in [0,1]). *)

type controller = {
  controller_name : string;
  adjust : rtt_ms:float -> loss:float -> float;
      (** Rate multiplier for this tick, clamped to [0.1, 4.0]. *)
}

val aimd : controller
(** Additive-increase / multiplicative-decrease fallback: halve on
    loss, grow 2% otherwise. *)

type t

val create :
  engine:Gr_sim.Engine.t ->
  hooks:Hooks.t ->
  capacity_mbps:float ->
  ?base_rtt:Gr_util.Time_ns.t ->
  ?queue_capacity_ms:float ->
  ?tick:Gr_util.Time_ns.t ->
  unit ->
  t
(** Defaults: 20ms base RTT, 50ms of buffering, 10ms ticks. *)

val slot : t -> controller Policy_slot.t

val start : t -> initial_rate_mbps:float -> unit
(** Begins ticking; idempotent. *)

val rate_mbps : t -> float
val rtt_ms : t -> float
(** Latest measured RTT (base + queueing delay). *)

val loss : t -> float
(** Loss fraction measured over the last tick. *)

val utilization : t -> float
(** Delivered/capacity over the last tick, in [0, 1]. *)

val mean_utilization : t -> float
(** Since [start]. *)

val ticks : t -> int
