(** Two-tier memory manager.

    Pages live in a fast tier (bounded capacity) or a slow tier.
    Accessing a slow page costs a major-fault-style latency and asks
    the placement policy whether to promote it (evicting the least
    recently used fast page when full). The placement slot hosts a
    learned policy (Kleio/IDT-style); the paper's P1 drift and A3
    retrain examples run against this subsystem, and the P3
    out-of-bounds example uses {!advise_quota} — a policy-proposed
    fast-tier reservation that is illegal when it exceeds capacity.

    Hook points fired:
    - ["mm:access"]     — [page], [fast] (1 if served by fast tier)
    - ["mm:page_fault"] — [latency_us]
    - ["mm:promote"]    — [page]
    - ["mm:quota"]      — [requested], [capacity] *)

type policy = {
  policy_name : string;
  promote : float array -> bool;
      (** [promote features] decides promotion on a slow-tier access.
          Features: access count, time since previous access (ms),
          fast-tier occupancy fraction. *)
}

val promote_on_second_touch : policy
(** Default heuristic: promote a page on its second access within the
    tracking horizon. *)

type t

val create :
  engine:Gr_sim.Engine.t ->
  hooks:Hooks.t ->
  fast_capacity:int ->
  ?fast_latency:Gr_util.Time_ns.t ->
  ?slow_latency:Gr_util.Time_ns.t ->
  ?promote_cost:Gr_util.Time_ns.t ->
  unit ->
  t

val slot : t -> policy Policy_slot.t

val access : t -> page:int -> Gr_util.Time_ns.t
(** Touches a page, returns the access latency (also advances no
    simulated time itself; callers schedule with it as needed). *)

val advise_quota : t -> requested:int -> [ `Applied of int | `Rejected ]
(** Applies a policy-proposed fast-tier reservation. Requests beyond
    capacity are clamped-and-reported via the ["mm:quota"] hook —
    the P3 guardrail watches for [requested > capacity]. *)

val fast_capacity : t -> int
val fast_occupancy : t -> int
val accesses : t -> int
val fast_hits : t -> int
val hit_fraction : t -> float
val promotions : t -> int
