(** Block layer with flash-RAID failover.

    This is the LinnOS deployment scenario from §5 of the paper.
    Reads target a primary device. The storage cluster has built-in
    failover: the baseline policy issues to the primary and, if the
    I/O has not completed after a hedge timeout, revokes it and
    reissues to a replica (paying the timeout plus a revocation
    overhead). A learned policy instead predicts up front:

    - predicted {e slow} — revoke immediately and serve from the
      replica (saving the timeout wait);
    - predicted {e fast} — trust the primary with {e no} hedge
      (saving the duplicate I/O).

    The gamble in the second case is the {e false submit}: an I/O
    predicted fast that the primary then serves slowly waits out the
    full device latency with no failover — the misprediction whose
    rate Figure 2's guardrail bounds. A {e false revoke} is a wasted
    reissue (the primary would have been fast).

    For decision-quality (P4) guardrails the block layer also
    publishes a per-I/O {e counterfactual hedge latency}: what the
    baseline policy would have paid for the same I/O, computed from
    the primary's ground-truth latency and the replica's recent
    service times. Comparing the served latency's window average to
    the counterfactual's gives a shadow-baseline quality signal
    without running a second cluster.

    Hook points fired (scalar args):
    - ["blk:io_submit"]   — [dev], [decision] (0 hedge / 1 trust / 2 revoke)
    - ["blk:io_complete"] — [latency_us], [dev], [redirected],
                            [false_submit], [false_revoke], [hedged],
                            [hedge_counterfactual_us] *)

type decision =
  | Hedge of Gr_util.Time_ns.t
      (** Submit to primary; revoke to the replica if not complete
          after the given timeout. The safe default. *)
  | Trust_primary  (** Submit to primary with no failover. *)
  | Revoke_now  (** Reissue to the replica immediately. *)

type policy = {
  policy_name : string;
  decide : float array -> decision;
      (** [decide features] with the features of {!features}. *)
}

val hedge_policy : ?timeout:Gr_util.Time_ns.t -> unit -> policy
(** Baseline flash-RAID failover: always [Hedge timeout]
    (default 300us). *)

type io_result = {
  submitted_at : Gr_util.Time_ns.t;
  latency : Gr_util.Time_ns.t;  (** end-to-end, incl. hedge/revoke costs *)
  served_by : int;  (** device index that finally served the I/O *)
  redirected : bool;  (** served by the replica *)
  decision : decision;
  primary_was_slow : bool;  (** ground truth for the primary *)
}

type t

val create :
  engine:Gr_sim.Engine.t ->
  hooks:Hooks.t ->
  devices:Ssd.t array ->
  ?slow_threshold_us:float ->
  ?revoke_overhead:Gr_util.Time_ns.t ->
  ?feature_history:int ->
  unit ->
  t
(** Requires at least two devices. The slow threshold (default 300us)
    defines ground-truth "slow"; revoke overhead defaults to 15us. *)

val slot : t -> policy Policy_slot.t
(** The submission-policy slot; the REPLACE action acts here. *)

val features : t -> primary:int -> float array
(** Feature vector for an I/O targeting [primary]: primary queue
    depth, replica queue depth, then [feature_history] recent primary
    service latencies (us, oldest first). *)

val feature_dim : t -> int

val submit_read : t -> primary:int -> on_complete:(io_result -> unit) -> unit
(** Issues a read whose primary is device [primary mod n_devices]; the
    replica is the next device. Completion is delivered through the
    sim engine. *)

val slow_threshold_us : t -> float

(** Running counters since creation. *)

val ios_completed : t -> int
val false_submits : t -> int
val false_revokes : t -> int
val redirects : t -> int
val hedge_fires : t -> int
(** Hedged submissions whose timeout actually expired. *)
