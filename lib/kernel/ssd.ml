open Gr_util

type profile = {
  base_latency_us : float;
  latency_sigma : float;
  gc_period : Time_ns.t;
  gc_duration : Time_ns.t;
  gc_multiplier : float;
  queue_service_us : float;
}

let young_profile =
  {
    base_latency_us = 90.;
    latency_sigma = 0.25;
    gc_period = Time_ns.ms 40;
    gc_duration = Time_ns.us 1500;
    gc_multiplier = 8.;
    queue_service_us = 6.;
  }

let aged_profile =
  {
    base_latency_us = 100.;
    latency_sigma = 0.35;
    gc_period = Time_ns.ms 12;
    gc_duration = Time_ns.ms 3;
    gc_multiplier = 20.;
    queue_service_us = 8.;
  }

type t = {
  id : int;
  rng : Rng.t;
  mutable profile : profile;
  mutable queue : int;
  mutable completed : int;
  mutable dead : bool;
  mutable deaths : int;
  gc_phase : Time_ns.t; (* per-device offset so devices don't GC in lockstep *)
  history : float Ring.t; (* recent completed latencies, us *)
}

(* Service latency of a dead device: a command timeout, not an error
   return — the device model has no error path, so death is the
   pathological tail every latency guardrail must catch. *)
let dead_latency = Time_ns.ms 2000

let create ~rng ~profile ~id =
  let rng = Rng.fork rng in
  {
    id;
    rng;
    profile;
    queue = 0;
    completed = 0;
    dead = false;
    deaths = 0;
    gc_phase = Rng.int rng (max 1 profile.gc_period);
    history = Ring.create ~capacity:64;
  }

let id t = t.id
let profile t = t.profile
let set_profile t profile = t.profile <- profile
let queue_depth t = t.queue

let in_gc t ~now =
  let p = t.profile in
  if p.gc_period <= 0 then false
  else (now + t.gc_phase) mod p.gc_period < p.gc_duration

let draw_latency t ~now =
  if t.dead then dead_latency
  else begin
    let p = t.profile in
    let mu = log p.base_latency_us in
    let base_us = Rng.lognormal t.rng ~mu ~sigma:p.latency_sigma in
    let gc_factor = if in_gc t ~now then p.gc_multiplier else 1.0 in
    let queue_us = float_of_int t.queue *. p.queue_service_us in
    (* microseconds -> nanoseconds *)
    int_of_float (Float.round (((base_us *. gc_factor) +. queue_us) *. 1_000.))
  end

let kill t =
  if not t.dead then begin
    t.dead <- true;
    t.deaths <- t.deaths + 1
  end

let revive t = t.dead <- false
let is_dead t = t.dead
let deaths t = t.deaths

let begin_io t = t.queue <- t.queue + 1

let end_io t ~latency =
  t.queue <- max 0 (t.queue - 1);
  t.completed <- t.completed + 1;
  Ring.push t.history (Time_ns.to_float_us latency)

let recent_latencies_us t ~n =
  let len = Ring.length t.history in
  let take = min n len in
  Array.init n (fun i ->
      if i < n - take then 0. else Ring.get t.history (len - take + (i - (n - take))))

let completed t = t.completed
