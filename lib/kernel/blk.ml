open Gr_util

type decision = Hedge of Time_ns.t | Trust_primary | Revoke_now

type policy = { policy_name : string; decide : float array -> decision }

let hedge_policy ?(timeout = Time_ns.us 300) () =
  { policy_name = "hedge"; decide = (fun _ -> Hedge timeout) }

type io_result = {
  submitted_at : Time_ns.t;
  latency : Time_ns.t;
  served_by : int;
  redirected : bool;
  decision : decision;
  primary_was_slow : bool;
}

type t = {
  engine : Gr_sim.Engine.t;
  hooks : Hooks.t;
  devices : Ssd.t array;
  slot : policy Policy_slot.t;
  slow_threshold_us : float;
  revoke_overhead : Time_ns.t;
  feature_history : int;
  mutable completed : int;
  mutable false_submits : int;
  mutable false_revokes : int;
  mutable redirects : int;
  mutable hedge_fires : int;
}

let create ~engine ~hooks ~devices ?(slow_threshold_us = 300.)
    ?(revoke_overhead = Time_ns.us 15) ?(feature_history = 4) () =
  if Array.length devices < 2 then invalid_arg "Blk.create: need at least two devices";
  {
    engine;
    hooks;
    devices;
    slot =
      Policy_slot.create ~name:"blk:submission"
        ~fallback:("hedge", hedge_policy ~timeout:(Time_ns.of_float_sec (slow_threshold_us *. 1e-6)) ());
    slow_threshold_us;
    revoke_overhead;
    feature_history;
    completed = 0;
    false_submits = 0;
    false_revokes = 0;
    redirects = 0;
    hedge_fires = 0;
  }

let slot t = t.slot

let features t ~primary =
  let n = Array.length t.devices in
  let p = t.devices.(primary mod n) in
  let r = t.devices.((primary + 1) mod n) in
  Array.append
    [| float_of_int (Ssd.queue_depth p); float_of_int (Ssd.queue_depth r) |]
    (Ssd.recent_latencies_us p ~n:t.feature_history)

let feature_dim t = 2 + t.feature_history
let slow_threshold_us t = t.slow_threshold_us

let bool_arg b = if b then 1. else 0.

let decision_code = function Hedge _ -> 0. | Trust_primary -> 1. | Revoke_now -> 2.

(* Occupies [dev]'s queue for [latency], then runs [k]. *)
let occupy t ~dev ~latency k =
  Ssd.begin_io t.devices.(dev);
  let finish _engine =
    Ssd.end_io t.devices.(dev) ~latency;
    k ()
  in
  ignore (Gr_sim.Engine.schedule_after t.engine latency finish : Gr_sim.Engine.handle)

let submit_read t ~primary ~on_complete =
  let n = Array.length t.devices in
  let primary = primary mod n in
  let replica = (primary + 1) mod n in
  let now = Gr_sim.Engine.now t.engine in
  let policy = Policy_slot.current t.slot in
  let decision = policy.decide (features t ~primary) in
  (* Ground truth: the latency the primary would serve this I/O at. *)
  let primary_latency = Ssd.draw_latency t.devices.(primary) ~now in
  let primary_was_slow = Time_ns.to_float_us primary_latency > t.slow_threshold_us in
  Hooks.fire t.hooks "blk:io_submit"
    [ ("dev", float_of_int primary); ("decision", decision_code decision) ];
  (* What the hedge baseline would have paid for this I/O: the
     primary's ground-truth latency if it beats the timeout, else the
     timeout plus a typical replica service time (estimated from the
     replica's recent completions; its base profile median before any
     history accumulates). *)
  let hedge_counterfactual =
    let timeout = Time_ns.of_float_sec (t.slow_threshold_us *. 1e-6) in
    if Time_ns.compare primary_latency timeout <= 0 then primary_latency
    else begin
      let replica_dev = t.devices.(replica) in
      let recent = Ssd.recent_latencies_us replica_dev ~n:4 in
      let observed = Array.of_list (List.filter (fun v -> v > 0.) (Array.to_list recent)) in
      let typical_us =
        if Array.length observed > 0 then
          Array.fold_left ( +. ) 0. observed /. float_of_int (Array.length observed)
        else (Ssd.profile replica_dev).base_latency_us
      in
      Time_ns.add timeout
        (Time_ns.add (Time_ns.of_float_sec (typical_us *. 1e-6)) t.revoke_overhead)
    end
  in
  let complete ~served_by ~latency ~redirected ~hedged =
    t.completed <- t.completed + 1;
    let false_submit =
      match decision with Trust_primary -> primary_was_slow | Hedge _ | Revoke_now -> false
    in
    let false_revoke =
      match decision with Revoke_now -> not primary_was_slow | Hedge _ | Trust_primary -> false
    in
    if false_submit then t.false_submits <- t.false_submits + 1;
    if false_revoke then t.false_revokes <- t.false_revokes + 1;
    if redirected then t.redirects <- t.redirects + 1;
    Hooks.fire t.hooks "blk:io_complete"
      [
        ("latency_us", Time_ns.to_float_us latency);
        ("dev", float_of_int served_by);
        ("redirected", bool_arg redirected);
        ("false_submit", bool_arg false_submit);
        ("false_revoke", bool_arg false_revoke);
        ("hedged", bool_arg hedged);
        ("hedge_counterfactual_us", Time_ns.to_float_us hedge_counterfactual);
      ];
    on_complete
      { submitted_at = now; latency; served_by; redirected; decision; primary_was_slow }
  in
  match decision with
  | Trust_primary ->
    occupy t ~dev:primary ~latency:primary_latency (fun () ->
        complete ~served_by:primary ~latency:primary_latency ~redirected:false ~hedged:false)
  | Revoke_now ->
    let replica_latency = Ssd.draw_latency t.devices.(replica) ~now in
    let latency = Time_ns.add replica_latency t.revoke_overhead in
    occupy t ~dev:replica ~latency:replica_latency (fun () ->
        complete ~served_by:replica ~latency ~redirected:true ~hedged:false)
  | Hedge timeout ->
    if Time_ns.compare primary_latency timeout <= 0 then
      occupy t ~dev:primary ~latency:primary_latency (fun () ->
          complete ~served_by:primary ~latency:primary_latency ~redirected:false ~hedged:false)
    else begin
      (* Timeout expires: the primary slot is held until the timeout,
         then the I/O is revoked and reissued to the replica. *)
      t.hedge_fires <- t.hedge_fires + 1;
      occupy t ~dev:primary ~latency:timeout (fun () ->
          let now' = Gr_sim.Engine.now t.engine in
          let replica_latency = Ssd.draw_latency t.devices.(replica) ~now:now' in
          let total =
            Time_ns.add timeout (Time_ns.add replica_latency t.revoke_overhead)
          in
          occupy t ~dev:replica ~latency:replica_latency (fun () ->
              complete ~served_by:replica ~latency:total ~redirected:true ~hedged:true))
    end

let ios_completed t = t.completed
let false_submits t = t.false_submits
let false_revokes t = t.false_revokes
let redirects t = t.redirects
let hedge_fires t = t.hedge_fires
