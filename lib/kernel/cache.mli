(** Fixed-capacity cache with a pluggable replacement policy.

    Substrate for the P4 decision-quality example in Figure 1: "cache
    replacement — decisions of the model must yield better hit rates
    than randomly selecting elements". The slot hosts LRU (default
    safe fallback), uniform-random eviction (the paper's quality
    floor), or a learned policy that scores eviction candidates.

    Hook point fired: ["cache:access"] — [key], [hit]. *)

type victim_chooser = candidates:int array -> int
(** Given the currently cached keys, returns the key to evict. *)

type policy = { policy_name : string; choose_victim : victim_chooser }

val lru : policy
(** Evicts the least recently used key. Implemented by the cache
    itself (the chooser receives candidates ordered LRU-first and
    picks the first). *)

val random : Gr_util.Rng.t -> policy

type t

val create : hooks:Hooks.t -> capacity:int -> t
val slot : t -> policy Policy_slot.t

val access : t -> key:int -> bool
(** [true] on hit. On miss the key is inserted, evicting a victim
    chosen by the live policy when full. *)

val contains : t -> key:int -> bool
val size : t -> int
val accesses : t -> int
val hits : t -> int
val hit_rate : t -> float
val reset_stats : t -> unit
