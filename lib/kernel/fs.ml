type policy = { policy_name : string; window : float array -> int }

let sequential_doubling ?(max_window = 32) () =
  {
    policy_name = "sequential-doubling";
    window =
      (fun features ->
        let delta = features.(0) and run = features.(1) in
        if delta <> 1. then 0
        else min max_window (4 * int_of_float (Float.min 8. (Float.max 1. run))));
  }

type page_state = { mutable prefetched : bool }

type t = {
  hooks : Hooks.t;
  cache_pages : int;
  file_pages : int;
  max_readahead : int;
  slot : policy Policy_slot.t;
  cached : (int, page_state) Hashtbl.t;
  mutable lru : int list; (* LRU first *)
  mutable last_offset : int;
  mutable run_length : int;
  mutable reads : int;
  mutable hits : int;
  mutable prefetched : int;
  mutable prefetch_wasted : int;
}

let create ~hooks ~cache_pages ?(file_pages = 65536) ?max_readahead () =
  if cache_pages <= 0 then invalid_arg "Fs.create: cache_pages must be positive";
  {
    hooks;
    cache_pages;
    file_pages;
    max_readahead = Option.value ~default:(4 * cache_pages) max_readahead;
    slot = Policy_slot.create ~name:"fs:readahead" ~fallback:("sequential-doubling", sequential_doubling ());
    cached = Hashtbl.create (2 * cache_pages);
    lru = [];
    last_offset = -100;
    run_length = 0;
    reads = 0;
    hits = 0;
    prefetched = 0;
    prefetch_wasted = 0;
  }

let slot t = t.slot
let cache_occupancy t = Hashtbl.length t.cached

let touch t offset = t.lru <- List.filter (fun o -> o <> offset) t.lru @ [ offset ]

let evict_one t =
  match t.lru with
  | [] -> ()
  | victim :: rest ->
    t.lru <- rest;
    (match Hashtbl.find_opt t.cached victim with
    | Some st when st.prefetched -> t.prefetch_wasted <- t.prefetch_wasted + 1
    | _ -> ());
    Hashtbl.remove t.cached victim

let insert t offset ~prefetched =
  if not (Hashtbl.mem t.cached offset) then begin
    while cache_occupancy t >= t.cache_pages do
      evict_one t
    done;
    Hashtbl.add t.cached offset { prefetched };
    t.lru <- t.lru @ [ offset ];
    if prefetched then t.prefetched <- t.prefetched + 1
  end

let read t ~offset =
  let offset = ((offset mod t.file_pages) + t.file_pages) mod t.file_pages in
  t.reads <- t.reads + 1;
  let delta = offset - t.last_offset in
  t.run_length <- (if delta = 1 then t.run_length + 1 else 0);
  t.last_offset <- offset;
  let hit =
    match Hashtbl.find_opt t.cached offset with
    | Some st ->
      st.prefetched <- false (* the prefetch paid off *);
      touch t offset;
      true
    | None -> false
  in
  if not hit then begin
    insert t offset ~prefetched:false;
    let features =
      [|
        float_of_int delta;
        float_of_int t.run_length;
        float_of_int (cache_occupancy t) /. float_of_int t.cache_pages;
      |]
    in
    let requested = (Policy_slot.current t.slot).window features in
    Hooks.fire t.hooks "fs:readahead"
      [ ("requested", float_of_int requested); ("limit", float_of_int t.cache_pages) ];
    (* The sanity cap prevents unbounded work, but requests above the
       memory limit still go through (evicting useful pages) — that
       is precisely the misbehaviour a P3 guardrail exists to stop. *)
    let granted = max 0 (min requested t.max_readahead) in
    for i = 1 to granted do
      insert t ((offset + i) mod t.file_pages) ~prefetched:true
    done
  end
  else Hooks.fire t.hooks "fs:read" [ ("offset", float_of_int offset); ("hit", 1.) ];
  if not hit then Hooks.fire t.hooks "fs:read" [ ("offset", float_of_int offset); ("hit", 0.) ];
  if hit then t.hits <- t.hits + 1;
  hit

let reads t = t.reads
let hits t = t.hits
let hit_rate t = if t.reads = 0 then 0. else float_of_int t.hits /. float_of_int t.reads
let prefetched t = t.prefetched
let prefetch_wasted t = t.prefetch_wasted

let reset_stats t =
  t.reads <- 0;
  t.hits <- 0;
  t.prefetched <- 0;
  t.prefetch_wasted <- 0
