(** CPU scheduler with pluggable time-slice and load-balancing
    policies.

    Weighted-fair (CFS-like) per-CPU runqueues: on each CPU the
    runnable task with the smallest virtual runtime is dispatched
    next, with its slice length coming from the slice policy slot —
    the attachment point for a learned scheduler. A misbehaving
    learned policy (e.g. one that hands out enormous slices to a
    favoured class) starves other tasks; the P6 liveness guardrail
    monitors exactly that, and the DEPRIORITIZE action (A4) lands
    here via {!deprioritize_class} / {!kill_class}.

    With [cpus > 1], tasks are pinned to the runqueue the balancer
    slot chose at spawn and there is deliberately no work stealing —
    so a skewed balancer reproduces the "cores may idle when ready
    tasks are still in the runqueue" failure the paper's introduction
    cites (the Decade of Wasted Cores bug class). {!wasted_cores}
    exposes the instantaneous signal; {!rebalance} is the corrective
    a guardrail can trigger.

    Hook points fired:
    - ["sched:dispatch"]      — [tid], [cpu], [slice_us], [wait_ms]
    - ["sched:task_complete"] — [tid], [turnaround_ms]
    - ["sched:starvation"]    — [max_wait_ms] (on every dispatch)
    - ["sched:wasted_core"]   — [cpu], [wasted] (a CPU went idle
                                while ready tasks wait elsewhere) *)

type task_state = Runnable | Running | Complete | Killed

type task = private {
  tid : int;
  task_name : string;
  cls : string;  (** scheduling class, the DEPRIORITIZE target *)
  mutable weight : int;
  demand : Gr_util.Time_ns.t;  (** total CPU time wanted *)
  mutable received : Gr_util.Time_ns.t;
  mutable vruntime : float;
  mutable state : task_state;
  mutable ready_since : Gr_util.Time_ns.t;
  mutable max_wait : Gr_util.Time_ns.t;
  mutable total_wait : Gr_util.Time_ns.t;
  mutable dispatches : int;
  mutable cpu : int;  (** runqueue this task is pinned to *)
  arrived : Gr_util.Time_ns.t;
}

type policy = {
  policy_name : string;
  slice : nr_runnable:int -> task_weight:int -> task_received_ms:float -> Gr_util.Time_ns.t;
      (** Slice to grant the chosen task. The scheduler clamps the
          result to [1us, 1s] defensively — illegal outputs beyond
          that are visible to the P3 guardrail via the raw value
          published on the dispatch hook. *)
}

val cfs_policy : policy
(** Default: 24ms scheduling period divided among the runqueue's
    runnable tasks, floored at 1ms. *)

type balancer = {
  balancer_name : string;
  place : queue_lens:int array -> int;
      (** Runqueue for a newly spawned task, given current queue
          lengths (runnable + running). Out-of-range choices are
          clamped. *)
}

val least_loaded : balancer
(** Default: the shortest queue (ties to the lowest CPU). *)

type t

val create : engine:Gr_sim.Engine.t -> hooks:Hooks.t -> ?cpus:int -> unit -> t
(** [cpus] defaults to 1 (a single shared runqueue). *)

val slot : t -> policy Policy_slot.t

val balancer_slot : t -> balancer Policy_slot.t
val cpus : t -> int

val spawn :
  t ->
  name:string ->
  ?cls:string ->
  ?weight:int ->
  demand:Gr_util.Time_ns.t ->
  unit ->
  task
(** Adds a runnable task; starts the dispatch loop if idle.
    [cls] defaults to ["default"], [weight] to 1024. *)

val deprioritize_class : t -> cls:string -> weight:int -> int
(** Sets the weight of every live task in [cls]; returns how many
    tasks were affected. *)

val kill_class : t -> cls:string -> int
(** Kills every live task in [cls]; returns how many were killed. *)

val tasks : t -> task list
(** All tasks ever spawned, in spawn order. *)

val runnable_count : t -> int

val wasted_cores : t -> int
(** CPUs currently idle while at least one ready task waits on some
    runqueue; always 0 on a single-CPU scheduler. *)

val rebalance : t -> int
(** Spreads runnable tasks evenly over the runqueues (running tasks
    stay put); returns how many were migrated. The corrective action
    for a wasted-cores guardrail. *)

val max_wait_ms : t -> float
(** Longest time any currently-ready task has been waiting, in ms —
    the P6 starvation signal. 0. when nothing waits. *)

val received_by_class : t -> (string * float) list
(** Total CPU seconds received per class; input to Jain's index. *)
