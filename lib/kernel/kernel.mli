(** The simulated kernel: one virtual clock, one hook registry, one
    policy-control registry, one seeded random stream.

    Subsystems ({!Blk}, {!Sched}, {!Mm}, {!Cache}) are constructed on
    top of a kernel as an experiment needs them; this module only owns
    the shared spine so that guardrail monitors, workload generators
    and subsystems all observe the same time and hooks. *)

type t = {
  engine : Gr_sim.Engine.t;
  hooks : Hooks.t;
  registry : Policy_slot.Registry.t;
  rng : Gr_util.Rng.t;
  mutable skew : Gr_util.Time_ns.t;
      (** additive offset on the observed clock; see {!advance_clock_skew} *)
}

val create : seed:int -> t

val create_on : engine:Gr_sim.Engine.t -> seed:int -> t
(** Builds a kernel that shares an existing sim engine — how a fleet
    gives every node kernel the same virtual clock and event queue
    while each keeps its own hooks, policy registry and seeded random
    stream. *)

val now : t -> Gr_util.Time_ns.t
(** The kernel-observed clock: the sim engine's virtual time plus the
    current skew. Everything layered on the kernel (feature-store
    timestamps, cooldown bookkeeping, trace timestamps) reads this;
    the event queue itself runs on the unskewed engine clock. *)

val clock_skew : t -> Gr_util.Time_ns.t

val advance_clock_skew : t -> by:Gr_util.Time_ns.t -> unit
(** Jumps the observed clock forward by [by] without firing any
    events — the fault model for clock skew (an NTP step, a VM
    migration pause). Forward-only, so store timestamps stay
    monotonic and windowed aggregates remain well-defined; a backward
    jump raises [Invalid_argument]. *)

val run_until : t -> Gr_util.Time_ns.t -> unit

val register_policy :
  t ->
  name:string ->
  ?retrain:(unit -> unit) ->
  replace:(unit -> unit) ->
  restore:(unit -> unit) ->
  unit ->
  unit
(** Convenience wrapper over {!Policy_slot.Registry.register}. *)
