(** The simulated kernel: one virtual clock, one hook registry, one
    policy-control registry, one seeded random stream.

    Subsystems ({!Blk}, {!Sched}, {!Mm}, {!Cache}) are constructed on
    top of a kernel as an experiment needs them; this module only owns
    the shared spine so that guardrail monitors, workload generators
    and subsystems all observe the same time and hooks. *)

type t = {
  engine : Gr_sim.Engine.t;
  hooks : Hooks.t;
  registry : Policy_slot.Registry.t;
  rng : Gr_util.Rng.t;
}

val create : seed:int -> t

val now : t -> Gr_util.Time_ns.t

val run_until : t -> Gr_util.Time_ns.t -> unit

val register_policy :
  t ->
  name:string ->
  ?retrain:(unit -> unit) ->
  replace:(unit -> unit) ->
  restore:(unit -> unit) ->
  unit ->
  unit
(** Convenience wrapper over {!Policy_slot.Registry.register}. *)
