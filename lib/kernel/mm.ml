open Gr_util

type policy = { policy_name : string; promote : float array -> bool }

let promote_on_second_touch =
  {
    policy_name = "second-touch";
    promote = (fun features -> features.(0) >= 2.);
  }

type page_state = {
  mutable in_fast : bool;
  mutable access_count : int;
  mutable last_access : Time_ns.t;
}

type t = {
  engine : Gr_sim.Engine.t;
  hooks : Hooks.t;
  slot : policy Policy_slot.t;
  fast_capacity : int;
  fast_latency : Time_ns.t;
  slow_latency : Time_ns.t;
  promote_cost : Time_ns.t;
  pages : (int, page_state) Hashtbl.t;
  mutable fast_lru : int list; (* most recent first; only fast pages *)
  mutable accesses : int;
  mutable fast_hits : int;
  mutable promotions : int;
  mutable quota : int;
}

let create ~engine ~hooks ~fast_capacity ?(fast_latency = Time_ns.ns 120)
    ?(slow_latency = Time_ns.us 2) ?(promote_cost = Time_ns.us 4) () =
  if fast_capacity <= 0 then invalid_arg "Mm.create: fast_capacity must be positive";
  {
    engine;
    hooks;
    slot = Policy_slot.create ~name:"mm:placement" ~fallback:("second-touch", promote_on_second_touch);
    fast_capacity;
    fast_latency;
    slow_latency;
    promote_cost;
    pages = Hashtbl.create 1024;
    fast_lru = [];
    accesses = 0;
    fast_hits = 0;
    promotions = 0;
    quota = fast_capacity;
  }

let slot t = t.slot

let page_state t page =
  match Hashtbl.find_opt t.pages page with
  | Some st -> st
  | None ->
    let st = { in_fast = false; access_count = 0; last_access = Time_ns.zero } in
    Hashtbl.add t.pages page st;
    st

let touch_lru t page =
  t.fast_lru <- page :: List.filter (fun p -> p <> page) t.fast_lru

let evict_lru t =
  match List.rev t.fast_lru with
  | [] -> ()
  | victim :: _ ->
    t.fast_lru <- List.filter (fun p -> p <> victim) t.fast_lru;
    (page_state t victim).in_fast <- false

let fast_occupancy t = List.length t.fast_lru
let fast_capacity t = t.fast_capacity

let promote t page st =
  while fast_occupancy t >= min t.quota t.fast_capacity do
    evict_lru t
  done;
  st.in_fast <- true;
  touch_lru t page;
  t.promotions <- t.promotions + 1;
  Hooks.fire t.hooks "mm:promote" [ ("page", float_of_int page) ]

let access t ~page =
  let now = Gr_sim.Engine.now t.engine in
  let st = page_state t page in
  t.accesses <- t.accesses + 1;
  let gap_ms =
    if st.access_count = 0 then 1e9 else Time_ns.to_float_ms (Time_ns.diff now st.last_access)
  in
  st.access_count <- st.access_count + 1;
  st.last_access <- now;
  let latency =
    if st.in_fast then begin
      t.fast_hits <- t.fast_hits + 1;
      touch_lru t page;
      t.fast_latency
    end
    else begin
      let features =
        [|
          float_of_int st.access_count;
          gap_ms;
          float_of_int (fast_occupancy t) /. float_of_int t.fast_capacity;
        |]
      in
      let policy = Policy_slot.current t.slot in
      let lat =
        if policy.promote features then begin
          promote t page st;
          Time_ns.add t.slow_latency t.promote_cost
        end
        else t.slow_latency
      in
      Hooks.fire t.hooks "mm:page_fault" [ ("latency_us", Time_ns.to_float_us lat) ];
      lat
    end
  in
  Hooks.fire t.hooks "mm:access"
    [ ("page", float_of_int page); ("fast", if st.in_fast then 1. else 0.) ];
  latency

let advise_quota t ~requested =
  Hooks.fire t.hooks "mm:quota"
    [ ("requested", float_of_int requested); ("capacity", float_of_int t.fast_capacity) ];
  if requested < 0 || requested > t.fast_capacity then `Rejected
  else begin
    t.quota <- requested;
    while fast_occupancy t > t.quota do
      evict_lru t
    done;
    `Applied requested
  end

let accesses t = t.accesses
let fast_hits t = t.fast_hits
let hit_fraction t = if t.accesses = 0 then 0. else float_of_int t.fast_hits /. float_of_int t.accesses
let promotions t = t.promotions
