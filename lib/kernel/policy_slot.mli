(** Named policy slots with fallback stacks.

    The REPLACE action (A2) "swaps out a misbehaving learned policy
    with a known-safe fallback" (§3.2). Each subsystem that can host a
    learned policy owns a slot: a stack of named implementations whose
    top is live. REPLACE pops to the fallback; RESTORE re-installs the
    learned policy. The slot records every transition with its
    timestamp so experiments can mark "guardrail triggered" points.

    The untyped {!Registry} lets the action engine drive slots by name
    without knowing the implementation type, which is how compiled
    monitors reference policies. *)

type 'a t

val create : name:string -> fallback:string * 'a -> 'a t
(** A slot is born running its fallback. *)

val name : 'a t -> string

val install : 'a t -> name:string -> 'a -> unit
(** Pushes a new implementation; it becomes live. *)

val current : 'a t -> 'a
val current_name : 'a t -> string

val use_fallback : 'a t -> unit
(** Pops to the bottom (known-safe) implementation. Idempotent. *)

val restore : 'a t -> unit
(** Reinstates the most recently installed implementation after a
    [use_fallback]. Idempotent when already live. *)

val on_fallback : 'a t -> bool
val transitions : 'a t -> (string * string) list
(** Chronological (from, to) implementation-name changes. *)

module Model : sig
  (** The slot's REPLACE/RESTORE behavior as a finite transition
      table — the ground truth the [grc verify] action-machine
      checker ({!Gr_analysis.Machine}) explores. Exposed as data so
      the checker cannot drift from the implementation: a property
      test folds {!step} over random action sequences and compares
      against a real slot's {!on_fallback}. *)

  type state = Learned | Fallback
  type input = Replace | Restore

  val step : state -> input -> state
  val table : (state * input * state) list
  (** Every [(from, input, to)] triple of {!step}. *)

  val abstract : 'a t -> state
  (** The abstraction map: [Fallback] iff {!on_fallback}. *)

  val state_name : state -> string
  val input_name : input -> string
end

module Registry : sig
  (** Name-indexed registry of controls the action engine can invoke.
      Policies register [replace]/[restore]/[retrain] closures; the
      scheduler registers [deprioritize]. *)

  type controls = {
    replace : unit -> unit;  (** switch slot to its fallback *)
    restore : unit -> unit;  (** reinstate the learned policy *)
    retrain : unit -> unit;  (** kick an (async, simulated) retrain *)
  }

  type t

  val create : unit -> t
  val register : t -> string -> controls -> unit
  (** Re-registering a name overwrites the old entry. *)

  val find : t -> string -> controls option
  val names : t -> string list

  val no_retrain : unit -> unit
  (** Placeholder for policies that cannot retrain; logs a warning. *)
end
