open Gr_util

type controller = {
  controller_name : string;
  adjust : rtt_ms:float -> loss:float -> float;
}

let aimd =
  {
    controller_name = "aimd";
    adjust = (fun ~rtt_ms:_ ~loss -> if loss > 0.001 then 0.5 else 1.02);
  }

type t = {
  engine : Gr_sim.Engine.t;
  hooks : Hooks.t;
  capacity_mbps : float;
  base_rtt : Time_ns.t;
  queue_capacity_ms : float;
  tick : Time_ns.t;
  slot : controller Policy_slot.t;
  mutable rate_mbps : float;
  mutable queue_ms : float; (* backlog expressed as drain time *)
  mutable rtt_ms : float;
  mutable loss : float;
  mutable util : float;
  mutable util_sum : float;
  mutable ticks : int;
  mutable running : bool;
}

let create ~engine ~hooks ~capacity_mbps ?(base_rtt = Time_ns.ms 20)
    ?(queue_capacity_ms = 50.) ?(tick = Time_ns.ms 10) () =
  if capacity_mbps <= 0. then invalid_arg "Net.create: capacity must be positive";
  {
    engine;
    hooks;
    capacity_mbps;
    base_rtt;
    queue_capacity_ms;
    tick;
    slot = Policy_slot.create ~name:"net:congestion" ~fallback:("aimd", aimd);
    rate_mbps = 0.;
    queue_ms = 0.;
    rtt_ms = Time_ns.to_float_ms base_rtt;
    loss = 0.;
    util = 0.;
    util_sum = 0.;
    ticks = 0;
    running = false;
  }

let slot t = t.slot

let step t =
  let tick_ms = Time_ns.to_float_ms t.tick in
  (* Work is measured in megabit-milliseconds; the link drains
     capacity_mbps worth each tick. *)
  let offered = t.rate_mbps *. tick_ms in
  let drained = t.capacity_mbps *. tick_ms in
  let backlog = (t.queue_ms *. t.capacity_mbps) +. offered in
  let after = Float.max 0. (backlog -. drained) in
  let queue_cap = t.queue_capacity_ms *. t.capacity_mbps in
  let overflow = Float.max 0. (after -. queue_cap) in
  (* min, not subtraction: at extreme offered loads (after >> cap)
     [after -. overflow] cancels catastrophically. *)
  let retained = Float.min after queue_cap in
  t.queue_ms <- retained /. t.capacity_mbps;
  t.loss <- (if offered > 0. then overflow /. offered else 0.);
  let delivered = Float.min backlog drained in
  t.util <- Float.min 1. (delivered /. drained);
  t.util_sum <- t.util_sum +. t.util;
  t.ticks <- t.ticks + 1;
  t.rtt_ms <- Time_ns.to_float_ms t.base_rtt +. t.queue_ms;
  let controller = Policy_slot.current t.slot in
  let multiplier = controller.adjust ~rtt_ms:t.rtt_ms ~loss:t.loss in
  let multiplier = Float.max 0.1 (Float.min 4.0 multiplier) in
  (* The sending rate is bounded well above capacity but finite, as a
     real host's NIC would bound it. *)
  t.rate_mbps <-
    Float.max 0.1 (Float.min (100. *. t.capacity_mbps) (t.rate_mbps *. multiplier));
  Hooks.fire t.hooks "net:tick"
    [
      ("rtt_ms", t.rtt_ms);
      ("loss", t.loss);
      ("rate_mbps", t.rate_mbps);
      ("util", t.util);
    ]

let start t ~initial_rate_mbps =
  if not t.running then begin
    t.running <- true;
    t.rate_mbps <- initial_rate_mbps;
    ignore
      (Gr_sim.Engine.every t.engine ~interval:t.tick (fun _ -> step t) : Gr_sim.Engine.handle)
  end

let rate_mbps t = t.rate_mbps
let rtt_ms t = t.rtt_ms
let loss t = t.loss
let utilization t = t.util
let mean_utilization t = if t.ticks = 0 then 0. else t.util_sum /. float_of_int t.ticks
let ticks t = t.ticks
