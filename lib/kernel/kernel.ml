type t = {
  engine : Gr_sim.Engine.t;
  hooks : Hooks.t;
  registry : Policy_slot.Registry.t;
  rng : Gr_util.Rng.t;
  mutable skew : Gr_util.Time_ns.t;
}

let create_on ~engine ~seed =
  {
    engine;
    hooks = Hooks.create ();
    registry = Policy_slot.Registry.create ();
    rng = Gr_util.Rng.create seed;
    skew = Gr_util.Time_ns.zero;
  }

let create ~seed = create_on ~engine:(Gr_sim.Engine.create ()) ~seed

let now t = Gr_util.Time_ns.add (Gr_sim.Engine.now t.engine) t.skew

let clock_skew t = t.skew

let advance_clock_skew t ~by =
  if by < 0 then invalid_arg "Kernel.advance_clock_skew: skew only advances forward";
  t.skew <- Gr_util.Time_ns.add t.skew by
let run_until t limit = Gr_sim.Engine.run_until t.engine limit

let register_policy t ~name ?(retrain = Policy_slot.Registry.no_retrain) ~replace ~restore () =
  Policy_slot.Registry.register t.registry name { replace; restore; retrain }
