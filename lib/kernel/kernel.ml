type t = {
  engine : Gr_sim.Engine.t;
  hooks : Hooks.t;
  registry : Policy_slot.Registry.t;
  rng : Gr_util.Rng.t;
}

let create ~seed =
  {
    engine = Gr_sim.Engine.create ();
    hooks = Hooks.create ();
    registry = Policy_slot.Registry.create ();
    rng = Gr_util.Rng.create seed;
  }

let now t = Gr_sim.Engine.now t.engine
let run_until t limit = Gr_sim.Engine.run_until t.engine limit

let register_policy t ~name ?(retrain = Policy_slot.Registry.no_retrain) ~replace ~restore () =
  Policy_slot.Registry.register t.registry name { replace; restore; retrain }
