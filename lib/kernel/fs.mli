(** File read path with a page cache and pluggable readahead.

    The paper's recurring learned-policy example is file readahead
    (§1, §2: "prefetch read ahead"), and its P3 illustration is a
    prefetcher "prefetching chunks from a file beyond the memory
    limit for a process". This substrate provides both sides:

    - a per-file page cache of bounded capacity (the process's memory
      limit), filled by demand misses and by readahead;
    - a readahead slot consulted on every miss: given recent access
      features it returns how many pages to prefetch. The returned
      window is applied as-is up to a hard sanity cap, and the raw
      request is published on the ["fs:readahead"] hook so a P3
      guardrail can check it against the memory limit; requests
      beyond the limit evict useful pages (the performance cost of
      the illegal output).

    The default policy mirrors Linux's sequential-detection readahead
    (double the window on sequential hits up to a maximum, reset on
    seeks). A learned policy predicts the run length instead.

    Hooks fired:
    - ["fs:read"]      — [offset], [hit]
    - ["fs:readahead"] — [requested], [limit] (pages) *)

type policy = {
  policy_name : string;
  window : float array -> int;
      (** [window features] -> pages to prefetch on a miss.
          Features: last access offset delta (pages), current
          sequential run length, cache occupancy fraction. *)
}

val sequential_doubling : ?max_window:int -> unit -> policy
(** Linux-style heuristic: window doubles with the sequential run
    (4, 8, 16, ... up to [max_window], default 32); random seeks
    reset to 0. *)

type t

val create :
  hooks:Hooks.t ->
  cache_pages:int ->
  ?file_pages:int ->
  ?max_readahead:int ->
  unit ->
  t
(** [cache_pages] is the process's page budget (the P3 memory limit);
    [file_pages] the file size (default 65536); [max_readahead] the
    hard sanity cap (default 4x cache). *)

val slot : t -> policy Policy_slot.t

val read : t -> offset:int -> bool
(** Reads one page; [true] on cache hit. On miss, the page is loaded
    and the policy's readahead window prefetched after it. *)

val reads : t -> int
val hits : t -> int
val hit_rate : t -> float
val prefetched : t -> int
(** Pages brought in by readahead. *)

val prefetch_wasted : t -> int
(** Prefetched pages evicted without ever being read. *)

val cache_occupancy : t -> int
val reset_stats : t -> unit
