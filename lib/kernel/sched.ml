open Gr_util

type task_state = Runnable | Running | Complete | Killed

type task = {
  tid : int;
  task_name : string;
  cls : string;
  mutable weight : int;
  demand : Time_ns.t;
  mutable received : Time_ns.t;
  mutable vruntime : float;
  mutable state : task_state;
  mutable ready_since : Time_ns.t;
  mutable max_wait : Time_ns.t;
  mutable total_wait : Time_ns.t;
  mutable dispatches : int;
  mutable cpu : int;
  arrived : Time_ns.t;
}

type policy = {
  policy_name : string;
  slice : nr_runnable:int -> task_weight:int -> task_received_ms:float -> Time_ns.t;
}

let cfs_policy =
  {
    policy_name = "cfs";
    slice =
      (fun ~nr_runnable ~task_weight:_ ~task_received_ms:_ ->
        Time_ns.max (Time_ns.ms 1) (Time_ns.ms 24 / max 1 nr_runnable));
  }

type balancer = { balancer_name : string; place : queue_lens:int array -> int }

let least_loaded =
  {
    balancer_name = "least-loaded";
    place =
      (fun ~queue_lens ->
        let best = ref 0 in
        Array.iteri (fun i len -> if len < queue_lens.(!best) then best := i) queue_lens;
        !best);
  }

type t = {
  engine : Gr_sim.Engine.t;
  hooks : Hooks.t;
  slot : policy Policy_slot.t;
  balancer_slot : balancer Policy_slot.t;
  cpus : int;
  dispatching : bool array;
  mutable all_tasks : task list; (* newest first *)
  mutable next_tid : int;
}

let create ~engine ~hooks ?(cpus = 1) () =
  if cpus <= 0 then invalid_arg "Sched.create: cpus must be positive";
  {
    engine;
    hooks;
    slot = Policy_slot.create ~name:"sched:slice" ~fallback:("cfs", cfs_policy);
    balancer_slot =
      Policy_slot.create ~name:"sched:balancer" ~fallback:("least-loaded", least_loaded);
    cpus;
    dispatching = Array.make cpus false;
    all_tasks = [];
    next_tid = 1;
  }

let slot t = t.slot
let balancer_slot t = t.balancer_slot
let cpus t = t.cpus
let tasks t = List.rev t.all_tasks
let runnable t = List.filter (fun task -> task.state = Runnable) t.all_tasks
let runnable_count t = List.length (runnable t)
let runnable_on t c = List.filter (fun task -> task.state = Runnable && task.cpu = c) t.all_tasks

let running_on t c =
  List.exists (fun task -> task.state = Running && task.cpu = c) t.all_tasks

(* CPUs sitting idle while ready tasks wait on other runqueues — the
   "decade of wasted cores" signal the paper's Sec. 1 cites. *)
let wasted_cores t =
  let idle c = (not (running_on t c)) && runnable_on t c = [] in
  let someone_waits = runnable t <> [] in
  if not someone_waits then 0
  else begin
    let count = ref 0 in
    for c = 0 to t.cpus - 1 do
      if idle c then incr count
    done;
    !count
  end

let max_wait_ms t =
  let now = Gr_sim.Engine.now t.engine in
  List.fold_left
    (fun acc task -> Float.max acc (Time_ns.to_float_ms (Time_ns.diff now task.ready_since)))
    0. (runnable t)

let received_by_class t =
  let table = Hashtbl.create 8 in
  List.iter
    (fun task ->
      let prev = Option.value ~default:0. (Hashtbl.find_opt table task.cls) in
      Hashtbl.replace table task.cls (prev +. Time_ns.to_float_sec task.received))
    t.all_tasks;
  List.of_seq (Hashtbl.to_seq table)

let pick_next t c =
  match runnable_on t c with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun best task -> if task.vruntime < best.vruntime then task else best)
         first rest)

let clamp_slice s = Time_ns.max (Time_ns.us 1) (Time_ns.min (Time_ns.sec 1) s)

let rec dispatch t c =
  match pick_next t c with
  | None ->
    t.dispatching.(c) <- false;
    (* Going idle with work queued elsewhere is the wasted-core
       condition; there is no work stealing, so only the balancer's
       placement decisions (or a guardrail) can fix it. *)
    let wasted = wasted_cores t in
    if wasted > 0 then
      Hooks.fire t.hooks "sched:wasted_core"
        [ ("cpu", float_of_int c); ("wasted", float_of_int wasted) ]
  | Some task ->
    let now = Gr_sim.Engine.now t.engine in
    let nr = List.length (runnable_on t c) in
    let policy = Policy_slot.current t.slot in
    let raw_slice =
      policy.slice ~nr_runnable:nr ~task_weight:task.weight
        ~task_received_ms:(Time_ns.to_float_ms task.received)
    in
    let remaining = Time_ns.diff task.demand task.received in
    let slice = Time_ns.min (clamp_slice raw_slice) remaining in
    let wait = Time_ns.diff now task.ready_since in
    task.max_wait <- Time_ns.max task.max_wait wait;
    task.total_wait <- Time_ns.add task.total_wait wait;
    task.dispatches <- task.dispatches + 1;
    task.state <- Running;
    Hooks.fire t.hooks "sched:dispatch"
      [
        ("tid", float_of_int task.tid);
        ("cpu", float_of_int c);
        ("slice_us", Time_ns.to_float_us raw_slice);
        ("wait_ms", Time_ns.to_float_ms wait);
      ];
    Hooks.fire t.hooks "sched:starvation" [ ("max_wait_ms", max_wait_ms t) ];
    let finish engine =
      let now' = Gr_sim.Engine.now engine in
      task.received <- Time_ns.add task.received slice;
      task.vruntime <-
        task.vruntime +. (Time_ns.to_float_sec slice *. 1024. /. float_of_int (max 1 task.weight));
      if Time_ns.compare task.received task.demand >= 0 then begin
        task.state <- Complete;
        Hooks.fire t.hooks "sched:task_complete"
          [
            ("tid", float_of_int task.tid);
            ("turnaround_ms", Time_ns.to_float_ms (Time_ns.diff now' task.arrived));
          ]
      end
      else begin
        task.state <- Runnable;
        task.ready_since <- now'
      end;
      dispatch t c
    in
    ignore (Gr_sim.Engine.schedule_after t.engine slice finish : Gr_sim.Engine.handle)

let ensure_dispatching t c =
  if not t.dispatching.(c) then begin
    t.dispatching.(c) <- true;
    (* Defer to an event so spawning inside a callback is safe. *)
    ignore (Gr_sim.Engine.schedule_after t.engine 0 (fun _ -> dispatch t c) : Gr_sim.Engine.handle)
  end

let queue_lens t =
  Array.init t.cpus (fun c ->
      List.length (runnable_on t c) + if running_on t c then 1 else 0)

let spawn t ~name ?(cls = "default") ?(weight = 1024) ~demand () =
  let now = Gr_sim.Engine.now t.engine in
  let balancer = Policy_slot.current t.balancer_slot in
  (* A bogus placement (negative or beyond the CPU count) is clamped
     into range rather than crashing the kernel; the raw decision is
     still observable to guardrails via queue imbalance. *)
  let cpu = max 0 (min (t.cpus - 1) (balancer.place ~queue_lens:(queue_lens t))) in
  let task =
    {
      tid = t.next_tid;
      task_name = name;
      cls;
      weight;
      demand;
      received = Time_ns.zero;
      vruntime = 0.;
      state = Runnable;
      ready_since = now;
      max_wait = Time_ns.zero;
      total_wait = Time_ns.zero;
      dispatches = 0;
      cpu;
      arrived = now;
    }
  in
  (* New tasks start at the minimum live vruntime of their runqueue so
     they neither starve nor monopolise. *)
  (match pick_next t cpu with Some leader -> task.vruntime <- leader.vruntime | None -> ());
  t.next_tid <- t.next_tid + 1;
  t.all_tasks <- task :: t.all_tasks;
  ensure_dispatching t cpu;
  task

let live_in_class t ~cls =
  List.filter
    (fun task -> task.cls = cls && (task.state = Runnable || task.state = Running))
    t.all_tasks

let deprioritize_class t ~cls ~weight =
  let affected = live_in_class t ~cls in
  List.iter (fun task -> task.weight <- max 1 weight) affected;
  List.length affected

let kill_class t ~cls =
  let affected = live_in_class t ~cls in
  List.iter (fun task -> if task.state <> Running then task.state <- Killed) affected;
  List.length (List.filter (fun task -> task.state = Killed) affected)

let rebalance t =
  (* Even redistribution of runnable tasks — the corrective a
     guardrail can invoke when the balancer has gone wrong. Running
     tasks stay put (no preemptive migration). *)
  let moved = ref 0 in
  let ready = runnable t in
  List.iteri
    (fun i task ->
      let target = i mod t.cpus in
      if task.cpu <> target then begin
        task.cpu <- target;
        incr moved
      end;
      ensure_dispatching t target)
    ready;
  !moved
