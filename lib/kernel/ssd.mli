(** Flash SSD device model.

    Reproduces the latency behaviour LinnOS exploits: most reads are
    fast, but a device periodically enters garbage-collection episodes
    during which service latencies inflate by an order of magnitude,
    and a deep device queue adds service delay. The model is a
    lognormal base latency, a deterministic per-device GC phase
    (period/duration/multiplier), and a linear queue penalty.

    Regime shifts — the trigger for Figure 2 — are induced with
    {!set_profile}: an "aged" device spends much more time in GC, so a
    classifier trained on the young regime goes stale. *)

type profile = {
  base_latency_us : float;  (** median fast-path read latency *)
  latency_sigma : float;  (** lognormal shape of the fast path *)
  gc_period : Gr_util.Time_ns.t;  (** time between GC episode starts *)
  gc_duration : Gr_util.Time_ns.t;  (** length of each episode *)
  gc_multiplier : float;  (** latency inflation during GC *)
  queue_service_us : float;  (** added latency per already-queued I/O *)
}

val young_profile : profile
(** Healthy device: ~90us median, brief (2ms) GC every 40ms. *)

val aged_profile : profile
(** Worn device: GC every 12ms for 6ms at a higher multiplier — the
    regime the model was never trained on. *)

type t

val create : rng:Gr_util.Rng.t -> profile:profile -> id:int -> t
val id : t -> int
val profile : t -> profile
val set_profile : t -> profile -> unit

val queue_depth : t -> int
val in_gc : t -> now:Gr_util.Time_ns.t -> bool

val kill : t -> unit
(** Device death: every subsequent I/O is served at a 2s command
    timeout (there is no error path in the model, so death shows up
    as the worst possible tail latency). Idempotent. *)

val revive : t -> unit
(** Brings a dead device back to its configured profile. *)

val is_dead : t -> bool

val deaths : t -> int
(** Times this device has been killed. *)

val draw_latency : t -> now:Gr_util.Time_ns.t -> Gr_util.Time_ns.t
(** Samples the service latency an I/O issued at [now] would see,
    given current queue depth and GC state. Does not change device
    state: the block layer calls this for the primary before deciding
    whether to revoke. *)

val begin_io : t -> unit
(** Enqueue an I/O (bumps queue depth). *)

val end_io : t -> latency:Gr_util.Time_ns.t -> unit
(** Complete an I/O: drops queue depth, records the latency in the
    device's recent-latency history. *)

val recent_latencies_us : t -> n:int -> float array
(** Up to [n] most recent completed latencies (newest last), in
    microseconds, zero-padded at the front when history is short.
    These are the LinnOS model features. *)

val completed : t -> int
