open Gr_util

type victim_chooser = candidates:int array -> int

type policy = { policy_name : string; choose_victim : victim_chooser }

let lru = { policy_name = "lru"; choose_victim = (fun ~candidates -> candidates.(0)) }

let random rng =
  let rng = Rng.fork rng in
  { policy_name = "random"; choose_victim = (fun ~candidates -> Rng.choice rng candidates) }

type t = {
  hooks : Hooks.t;
  capacity : int;
  slot : policy Policy_slot.t;
  mutable order : int list; (* LRU first, MRU last *)
  present : (int, unit) Hashtbl.t;
  mutable accesses : int;
  mutable hits : int;
}

let create ~hooks ~capacity =
  if capacity <= 0 then invalid_arg "Cache.create: capacity must be positive";
  {
    hooks;
    capacity;
    slot = Policy_slot.create ~name:"cache:replacement" ~fallback:("lru", lru);
    order = [];
    present = Hashtbl.create (2 * capacity);
    accesses = 0;
    hits = 0;
  }

let slot t = t.slot
let contains t ~key = Hashtbl.mem t.present key
let size t = Hashtbl.length t.present

let touch t key = t.order <- List.filter (fun k -> k <> key) t.order @ [ key ]

let evict t =
  let candidates = Array.of_list t.order in
  if Array.length candidates > 0 then begin
    let victim = (Policy_slot.current t.slot).choose_victim ~candidates in
    (* A buggy learned policy may name a key that is not cached; fall
       back to true LRU rather than corrupting the cache. *)
    let victim = if Hashtbl.mem t.present victim then victim else candidates.(0) in
    Hashtbl.remove t.present victim;
    t.order <- List.filter (fun k -> k <> victim) t.order
  end

let access t ~key =
  t.accesses <- t.accesses + 1;
  let hit = contains t ~key in
  if hit then begin
    t.hits <- t.hits + 1;
    touch t key
  end
  else begin
    if size t >= t.capacity then evict t;
    Hashtbl.add t.present key ();
    t.order <- t.order @ [ key ]
  end;
  Hooks.fire t.hooks "cache:access"
    [ ("key", float_of_int key); ("hit", if hit then 1. else 0.) ];
  hit

let accesses t = t.accesses
let hits t = t.hits
let hit_rate t = if t.accesses = 0 then 0. else float_of_int t.hits /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.hits <- 0
