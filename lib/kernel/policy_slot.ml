type 'a entry = { impl_name : string; impl : 'a }

type 'a t = {
  name : string;
  mutable stack : 'a entry list; (* top is live; bottom is the safe fallback *)
  mutable saved : 'a entry option; (* learned impl parked by use_fallback *)
  mutable transitions : (string * string) list; (* newest first *)
}

let create ~name ~fallback:(impl_name, impl) =
  { name; stack = [ { impl_name; impl } ]; saved = None; transitions = [] }

let name t = t.name

let live t =
  match t.stack with
  | top :: _ -> top
  | [] -> assert false (* the fallback is never popped *)

let record t from_ to_ = if from_ <> to_ then t.transitions <- (from_, to_) :: t.transitions

let install t ~name:impl_name impl =
  let from_ = (live t).impl_name in
  t.stack <- { impl_name; impl } :: t.stack;
  t.saved <- None;
  record t from_ impl_name

let current t = (live t).impl
let current_name t = (live t).impl_name

let rec bottom = function
  | [ e ] -> e
  | _ :: rest -> bottom rest
  | [] -> assert false

let use_fallback t =
  match t.stack with
  | [ _ ] -> () (* already on fallback *)
  | top :: _ ->
    let fb = bottom t.stack in
    t.saved <- Some top;
    t.stack <- [ fb ];
    record t top.impl_name fb.impl_name
  | [] -> assert false

let restore t =
  match t.saved with
  | None -> ()
  | Some entry ->
    let from_ = (live t).impl_name in
    t.stack <- entry :: t.stack;
    t.saved <- None;
    record t from_ entry.impl_name

let on_fallback t = t.saved <> None
let transitions t = List.rev t.transitions

module Model = struct
  type state = Learned | Fallback
  type input = Replace | Restore

  (* REPLACE parks the learned policy whatever is live (use_fallback
     is idempotent); RESTORE reinstates it (a no-op when live). The
     resulting state depends on the input alone. *)
  let step _state = function Replace -> Fallback | Restore -> Learned

  let table =
    [
      (Learned, Replace, Fallback);
      (Learned, Restore, Learned);
      (Fallback, Replace, Fallback);
      (Fallback, Restore, Learned);
    ]

  let abstract t = if on_fallback t then Fallback else Learned

  let state_name = function Learned -> "learned" | Fallback -> "fallback"
  let input_name = function Replace -> "REPLACE" | Restore -> "RESTORE"
end

module Registry = struct
  type controls = {
    replace : unit -> unit;
    restore : unit -> unit;
    retrain : unit -> unit;
  }

  type t = (string, controls) Hashtbl.t

  let create () = Hashtbl.create 16
  let register t name controls = Hashtbl.replace t name controls
  let find t name = Hashtbl.find_opt t name
  let names t = List.of_seq (Hashtbl.to_seq_keys t)

  let no_retrain () =
    Logs.warn (fun m -> m "RETRAIN requested for a policy that cannot retrain")
end
