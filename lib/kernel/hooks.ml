type args = (string * float) list

type listener = { id : int; fn : args -> unit; mutable strikes : int }

type point = { mutable listeners : listener list; mutable fired : int }

type t = {
  points : (string, point) Hashtbl.t;
  mutable next_id : int;
  mutable tracer : Gr_trace.Tracer.t option;
  mutable max_strikes : int;
  mutable contained_exns : int;
  mutable quarantined : int;
}

type subscription = { hook : string; listener_id : int }

let create () =
  {
    points = Hashtbl.create 64;
    next_id = 0;
    tracer = None;
    max_strikes = 3;
    contained_exns = 0;
    quarantined = 0;
  }

let set_tracer t tracer = t.tracer <- Some tracer
let clear_tracer t = t.tracer <- None
let tracer t = t.tracer

let set_max_strikes t n =
  if n <= 0 then invalid_arg "Hooks.set_max_strikes: must be positive";
  t.max_strikes <- n

let point t name =
  match Hashtbl.find_opt t.points name with
  | Some p -> p
  | None ->
    let p = { listeners = []; fired = 0 } in
    Hashtbl.add t.points name p;
    p

let subscribe t name fn =
  let p = point t name in
  let id = t.next_id in
  t.next_id <- id + 1;
  (* Keep subscription order: append. Lists are short (a few monitors
     per hook), so the O(n) append is irrelevant. *)
  p.listeners <- p.listeners @ [ { id; fn; strikes = 0 } ];
  { hook = name; listener_id = id }

let unsubscribe t sub =
  match Hashtbl.find_opt t.points sub.hook with
  | None -> ()
  | Some p -> p.listeners <- List.filter (fun l -> l.id <> sub.listener_id) p.listeners

(* A listener that raises must not take the kernel down with it — a
   crashing probe handler is the probe's bug, not a panic (the real
   kernel likewise contains a faulting BPF program). The exception is
   counted, traced, and after [max_strikes] faults the listener is
   quarantined: unsubscribed for good, like the kernel disabling a
   misbehaving kprobe. Fault-injection soaks reconcile these counters
   against the faults they injected, so a *real* listener bug still
   fails the run — it is accounted for, not swallowed. *)
let dispatch t name p args =
  List.iter
    (fun l ->
      try l.fn args
      with exn ->
        t.contained_exns <- t.contained_exns + 1;
        l.strikes <- l.strikes + 1;
        let quarantine = l.strikes >= t.max_strikes in
        if quarantine then begin
          t.quarantined <- t.quarantined + 1;
          p.listeners <- List.filter (fun l' -> l'.id <> l.id) p.listeners
        end;
        match t.tracer with
        | Some tr when Gr_trace.Tracer.enabled tr ->
          Gr_trace.Tracer.instant tr ~cat:"hook"
            ~args:
              [
                ("hook", Gr_trace.Event.Str name);
                ("listener", Gr_trace.Event.Int l.id);
                ("exn", Gr_trace.Event.Str (Printexc.to_string exn));
                ("strikes", Gr_trace.Event.Int l.strikes);
                ("quarantined", Gr_trace.Event.Bool quarantine);
              ]
            "hook.listener_exn"
        | _ -> ())
    p.listeners

let fire t name args =
  let p = point t name in
  p.fired <- p.fired + 1;
  match t.tracer with
  | Some tr when Gr_trace.Tracer.enabled tr && p.listeners <> [] ->
    (* Entry/exit span around listener dispatch: this is the FUNCTION
       trigger's kprobe-style entry and exit on the sim timeline.
       Unsubscribed hook firings stay untraced — they are the kernel's
       ambient call traffic, not guardrail activity. *)
    Gr_trace.Tracer.with_span tr ~cat:"hook"
      ~args:(List.map (fun (k, v) -> (k, Gr_trace.Event.Float v)) args)
      name
      (fun () -> dispatch t name p args)
  | _ -> dispatch t name p args

let fire_count t name =
  match Hashtbl.find_opt t.points name with None -> 0 | Some p -> p.fired

let contained_exn_count t = t.contained_exns
let quarantined_count t = t.quarantined

let known_hooks t = List.of_seq (Hashtbl.to_seq_keys t.points)
