type args = (string * float) list

type listener = { id : int; fn : args -> unit }

type point = { mutable listeners : listener list; mutable fired : int }

type t = {
  points : (string, point) Hashtbl.t;
  mutable next_id : int;
  mutable tracer : Gr_trace.Tracer.t option;
}

type subscription = { hook : string; listener_id : int }

let create () = { points = Hashtbl.create 64; next_id = 0; tracer = None }

let set_tracer t tracer = t.tracer <- Some tracer

let point t name =
  match Hashtbl.find_opt t.points name with
  | Some p -> p
  | None ->
    let p = { listeners = []; fired = 0 } in
    Hashtbl.add t.points name p;
    p

let subscribe t name fn =
  let p = point t name in
  let id = t.next_id in
  t.next_id <- id + 1;
  (* Keep subscription order: append. Lists are short (a few monitors
     per hook), so the O(n) append is irrelevant. *)
  p.listeners <- p.listeners @ [ { id; fn } ];
  { hook = name; listener_id = id }

let unsubscribe t sub =
  match Hashtbl.find_opt t.points sub.hook with
  | None -> ()
  | Some p -> p.listeners <- List.filter (fun l -> l.id <> sub.listener_id) p.listeners

let fire t name args =
  let p = point t name in
  p.fired <- p.fired + 1;
  match t.tracer with
  | Some tr when Gr_trace.Tracer.enabled tr && p.listeners <> [] ->
    (* Entry/exit span around listener dispatch: this is the FUNCTION
       trigger's kprobe-style entry and exit on the sim timeline.
       Unsubscribed hook firings stay untraced — they are the kernel's
       ambient call traffic, not guardrail activity. *)
    Gr_trace.Tracer.with_span tr ~cat:"hook"
      ~args:(List.map (fun (k, v) -> (k, Gr_trace.Event.Float v)) args)
      name
      (fun () -> List.iter (fun l -> l.fn args) p.listeners)
  | _ -> List.iter (fun l -> l.fn args) p.listeners

let fire_count t name =
  match Hashtbl.find_opt t.points name with None -> 0 | Some p -> p.fired

let known_hooks t = List.of_seq (Hashtbl.to_seq_keys t.points)
