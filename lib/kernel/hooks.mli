(** Kernel hook points.

    The paper's FUNCTION trigger evaluates a guardrail "whenever a
    specific function (e.g. a learned scheduler routine) is called"
    (§4.1). The simulated kernel exposes that by firing a named hook
    at each instrumentable call site; the guardrail engine subscribes
    monitors to hook names, and kernel instrumentation also uses hooks
    to publish features (named scalars) that listeners may forward into
    the feature store.

    Hook names are free-form strings such as ["blk:io_complete"] or
    ["sched:pick_next"]. Firing an unknown hook is cheap and legal —
    subscription creates the hook point lazily, which is what lets
    guardrails be deployed incrementally (§3.3). *)

type t

type args = (string * float) list
(** Named scalar arguments carried by a hook firing, e.g.
    [["latency_us", 132.; "device", 1.]]. *)

val create : unit -> t

val set_tracer : t -> Gr_trace.Tracer.t -> unit
(** Attach a tracer: every firing of a hook {e with listeners} emits
    an entry/exit span (category ["hook"]) carrying the hook's
    arguments — the FUNCTION trigger's entry/exit on the simulated
    timeline. Firings of unsubscribed hooks are not traced. *)

val clear_tracer : t -> unit
(** Detach the tracer; subsequent firings are untraced. *)

val tracer : t -> Gr_trace.Tracer.t option
(** The currently attached tracer, if any. *)

type subscription

val subscribe : t -> string -> (args -> unit) -> subscription
(** Listeners fire in subscription order.

    A listener that raises does not abort the firing: the exception
    is contained, counted ({!contained_exn_count}) and traced
    (instant event ["hook.listener_exn"], category ["hook"]), and
    the remaining listeners still run. A listener that has raised
    [max_strikes] times (default 3, {!set_max_strikes}) is
    {e quarantined}: permanently unsubscribed, the way the kernel
    disables a faulting probe handler. *)

val unsubscribe : t -> subscription -> unit

val fire : t -> string -> args -> unit

val fire_count : t -> string -> int
(** Times the named hook has fired; 0 for unknown hooks. *)

val set_max_strikes : t -> int -> unit
(** Faults a listener may raise before quarantine; must be positive. *)

val contained_exn_count : t -> int
(** Total listener exceptions contained since creation. Fault-soak
    invariant checks reconcile this against the hook faults they
    injected — an unexplained increment is a real listener bug. *)

val quarantined_count : t -> int
(** Listeners permanently removed after reaching the strike limit. *)

val known_hooks : t -> string list
(** All hook names that have ever been fired or subscribed to. *)
