(* Ablation C — guardrail feedback loops (§6).

   "Deploying multiple guardrails in the kernel — each monitoring a
   different property — can create feedback loops, where preventing
   one violation triggers another, causing the system to oscillate
   between violation states."

   We build the canonical instance: a performance guardrail that
   enables an aggressive mode when quality is low, and an overhead
   guardrail that disables it when cost is high — against a little
   plant where aggressive mode raises both quality and cost. The two
   monitors flip the shared control key forever.

   Shown: (a) the compiler's static interference analysis warns about
   the cycle at deployment time; (b) the runtime's oscillation
   detector flags both monitors; (c) a per-monitor action cooldown
   damps the flapping. *)

open Gr_util

let spec =
  {|
// Violated when quality is low while aggressive mode is off; the
// corrective action turns aggressive mode on.
guardrail quality-floor {
  trigger: { TIMER(0, 20ms) }
  rule: { LOAD(quality) >= 0.5 || LOAD(aggressive) == 1 }
  action: { SAVE(aggressive, 1) }
}
// Violated when cost is high while aggressive mode is on; the
// corrective action turns aggressive mode off. Each guardrail undoes
// the other's correction through the plant.
guardrail overhead-ceiling {
  trigger: { TIMER(0, 20ms) }
  rule: { LOAD(cost) <= 0.5 || LOAD(aggressive) == 0 }
  action: { SAVE(aggressive, 0) }
}
|}

(* The plant: aggressive mode buys quality at a cost; both lag the
   control a little so the loop is visible on the timers. *)
let install_plant kernel d =
  ignore
    (Gr_sim.Engine.every kernel.Gr_kernel.Kernel.engine ~interval:(Time_ns.ms 5) (fun _ ->
         let aggressive =
           Gr_runtime.Feature_store.load (Guardrails.Deployment.store d) "aggressive" <> 0.
         in
         Guardrails.Deployment.save d "quality" (if aggressive then 0.9 else 0.2);
         Guardrails.Deployment.save d "cost" (if aggressive then 0.9 else 0.1))
      : Gr_sim.Engine.handle)

let run_arm ?(auto_damp = false) ~cooldown () =
  let kernel = Gr_kernel.Kernel.create ~seed:5 in
  let config = { Gr_runtime.Engine.default_config with cooldown; auto_damp } in
  let d = Guardrails.Deployment.create ~kernel ~config ~engine:!Common.engine () in
  install_plant kernel d;
  Guardrails.Deployment.save d "aggressive" 0.;
  let handles = Guardrails.Deployment.install_source_exn d spec in
  let cycles = Guardrails.Deployment.feedback_cycles d in
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 2);
  let firings =
    List.fold_left
      (fun acc h ->
        acc + (Guardrails.Engine.Stats.get (Guardrails.Deployment.engine d) h).action_firings)
      0 handles
  in
  let oscillating = Guardrails.Engine.oscillating_monitors (Guardrails.Deployment.engine d) in
  (cycles, firings, oscillating)

let run () =
  Common.section "Ablation C — feedback loops between guardrails";
  let cycles, firings, oscillating = run_arm ~cooldown:Time_ns.zero () in
  print_endline "static analysis at deployment:";
  (match cycles with
  | [] -> print_endline "  no cycles found (unexpected)"
  | cs ->
    List.iter
      (fun c -> Printf.printf "  FEEDBACK LOOP warning: %s\n" (String.concat " -> " (c @ [ List.hd c ])))
      cs);
  print_endline "";
  Printf.printf "no cooldown:   %4d action firings in 2s; runtime flags oscillation in: %s\n"
    firings
    (if oscillating = [] then "(none)" else String.concat ", " oscillating);
  let _, firings_cd, oscillating_cd = run_arm ~cooldown:(Time_ns.ms 500) () in
  Printf.printf "500ms cooldown: %3d action firings in 2s; runtime flags oscillation in: %s\n"
    firings_cd
    (if oscillating_cd = [] then "(none)" else String.concat ", " oscillating_cd);
  let _, firings_damped, oscillating_damped = run_arm ~auto_damp:true ~cooldown:Time_ns.zero () in
  Printf.printf
    "auto-damp:      %3d action firings in 2s (cooldown doubles per alert); flagged: %s\n"
    firings_damped
    (if oscillating_damped = [] then "(none)" else String.concat ", " oscillating_damped)
