(* Ablation H — fleet-wide guardrails over merged shards.

   Four nodes on one shared clock each feed their own latency shard;
   a fleet-wide QUANTILE guardrail on the control engine reads the
   merged view. At t=2s one node's latency regime degrades, dragging
   the fleet p99 over the bound: the guardrail must fire from the
   incrementally merged state, and that state must agree exactly with
   the naive concat-and-scan oracle at every checkpoint (QUANTILE is
   an exact aggregate — no float tolerance). The REPLACE that follows
   is canaried to the degraded node only. *)

open Gr_util
module Fleet = Guardrails.Fleet
module D = Guardrails.Deployment
module Store = Guardrails.Store

let n_nodes = 4
let degraded_node = 2
let degrade_at = Time_ns.sec 2
let run_until = Time_ns.sec 6
let window_ns = float_of_int (Time_ns.sec 2)

let spec =
  {|
guardrail fleet-tail-latency {
  trigger: { TIMER(0, 100ms) },
  rule: { COUNT(io_lat_us, 2s) == 0 || QUANTILE(io_lat_us, 0.99, 2s) <= 800 },
  action: {
    REPORT("fleet p99 over bound", io_lat_us)
    REPLACE("lat_policy")
  }
}
|}

let run_once ~domains =
  let fleet = Fleet.create ~nodes:n_nodes ~seed:7 ~domains ~engine:!Common.engine () in
  let replaced = Array.make n_nodes 0 in
  Array.iteri
    (fun id node ->
      let kernel = D.kernel node in
      let rng = kernel.Gr_kernel.Kernel.rng in
      let degraded = ref false in
      if id = degraded_node then
        ignore
          (Gr_sim.Engine.schedule_at kernel.Gr_kernel.Kernel.engine degrade_at (fun _ ->
               degraded := true)
            : Gr_sim.Engine.handle);
      D.derive_periodic node ~key:"io_lat_us" ~every:(Time_ns.ms 5) (fun () ->
          let base = Rng.lognormal rng ~mu:5.0 ~sigma:0.4 in
          if !degraded then base *. 10. else base);
      Gr_kernel.Kernel.register_policy kernel ~name:"lat_policy"
        ~replace:(fun () -> replaced.(id) <- replaced.(id) + 1)
        ~restore:(fun () -> ())
        ())
    (Fleet.nodes fleet);
  Fleet.set_canary fleet ~policy:"lat_policy" [ degraded_node ];
  ignore (Fleet.install_source_exn fleet spec : Guardrails.Engine.handle list);
  (* Checkpoints: at every 500ms of fleet time, compare the merged
     incremental QUANTILE against the naive concat-and-scan oracle. *)
  let store = Fleet.store fleet in
  let checkpoints = ref 0 and mismatches = ref 0 and incremental_hits = ref 0 in
  ignore
    (Gr_sim.Engine.every (Fleet.sim fleet) ~interval:(Time_ns.ms 500) ~stop:run_until
       (fun _ ->
         let inc =
           Store.aggregate_result store ~key:"io_lat_us" ~fn:Gr_dsl.Ast.Quantile ~window_ns
             ~param:0.99
         in
         Store.set_force_naive store true;
         let naive =
           Store.aggregate store ~key:"io_lat_us" ~fn:Gr_dsl.Ast.Quantile ~window_ns
             ~param:0.99
         in
         Store.set_force_naive store false;
         incr checkpoints;
         if inc.Store.incremental then incr incremental_hits;
         let same =
           inc.Store.value = naive || (Float.is_nan inc.Store.value && Float.is_nan naive)
         in
         if not same then incr mismatches)
      : Gr_sim.Engine.handle);
  Fleet.run_until fleet run_until;
  let violations = Fleet.violations fleet in
  let first_fire =
    match violations with [] -> None | v :: _ -> Some v.Guardrails.Engine.at
  in
  Printf.printf "  nodes                        %d (node %d degrades 10x at t=%.0fs)\n"
    n_nodes degraded_node (Time_ns.to_float_sec degrade_at);
  Printf.printf "  merged-vs-naive checkpoints  %d (%d incremental, %d mismatches)\n"
    !checkpoints !incremental_hits !mismatches;
  (match first_fire with
  | Some at ->
    Printf.printf "  fleet p99 guardrail fired    t=%.2fs (%d violations total)\n"
      (Time_ns.to_float_sec at) (List.length violations)
  | None -> Printf.printf "  fleet p99 guardrail fired    never\n");
  Printf.printf "  canaried REPLACE deliveries  %s\n"
    (String.concat ", "
       (Array.to_list (Array.mapi (fun id n -> Printf.sprintf "node%d=%d" id n) replaced)));
  let ok =
    !mismatches = 0 && first_fire <> None
    && Array.for_all (fun n -> n = 0)
         (Array.of_list
            (List.filteri (fun id _ -> id <> degraded_node) (Array.to_list replaced)))
    && replaced.(degraded_node) > 0
  in
  Printf.printf "  verdict                      %s\n"
    (if ok then "OK: fired from merged state == naive oracle; canary confined"
     else "MISMATCH");
  ok

let run ~json:_ =
  Common.section "Ablation H — fleet-wide aggregation (4 nodes, merged QUANTILE)";
  let seq_ok = run_once ~domains:1 in
  (* Same rig under the parallel epoch-barrier runtime: the merged
     oracle checkpoints, the firing and the canary confinement must
     all reach the same verdict with node shards on their own
     domains. (The 5ms feeders tie with epoch boundaries, so traces
     are not compared byte-for-byte here — the verdict is the
     contract, see docs/PARALLEL.md on boundary ties.) *)
  Common.section "Ablation H' — same rig on the parallel runtime (--domains 2)";
  let par_ok = run_once ~domains:2 in
  Printf.printf "  parallel verdict agrees      %s\n"
    (if seq_ok = par_ok then "yes" else "NO");
  if not (seq_ok && par_ok) then exit 1
