(* Ablation G — naive scans vs incremental window aggregation.

   Drives a feature store directly (no kernel, no workload): fill a
   key's window to capacity, then alternate save/check in steady state
   so the window population stays pinned at [window] samples. The
   naive arm forces the full-scan oracle path; the incremental arm
   registers the demand up front, as Engine.install does. Reported
   per aggregate function: checks/sec for both arms, the speedup, and
   allocation per check (Gc.allocated_bytes delta / iterations).

   QUANTILE is the designed exception: its incremental path still
   ranks the in-window suffix (binary-searched cutoff, no rescan of
   expired samples), so its speedup hovers near 1x at full windows —
   the "min streaming speedup" line excludes it. *)

let all_fns : (Gr_dsl.Ast.agg * float) list =
  [
    (Count, 0.);
    (Sum, 0.);
    (Avg, 0.);
    (Rate, 0.);
    (Stddev, 0.);
    (Min, 0.);
    (Max, 0.);
    (Delta, 0.);
    (Quantile, 0.95);
  ]

let fn_name (fn : Gr_dsl.Ast.agg) =
  match fn with
  | Avg -> "AVG"
  | Rate -> "RATE"
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Min -> "MIN"
  | Max -> "MAX"
  | Stddev -> "STDDEV"
  | Quantile -> "QUANTILE"
  | Delta -> "DELTA"

let window_ns = 1e9

(* One arm: fresh store per (fn, mode) so the naive arm pays no
   demand-maintenance cost on save and vice versa. Returns
   (checks/sec, bytes allocated per check). *)
let run_arm ~naive ~fn ~param ~window ~iters =
  let now = ref 0 in
  let store =
    Gr_runtime.Feature_store.create ~clock:(fun () -> !now) ~capacity_per_key:window ()
  in
  if not naive then
    Gr_runtime.Feature_store.register_demand store ~key:"k" ~fn ~window_ns ~param;
  Gr_runtime.Feature_store.set_force_naive store naive;
  let step = int_of_float window_ns / window in
  for i = 1 to window do
    now := !now + step;
    Gr_runtime.Feature_store.save store "k" (float_of_int (i mod 97))
  done;
  let sink = ref 0. in
  let bytes0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  for i = 1 to iters do
    now := !now + step;
    Gr_runtime.Feature_store.save store "k" (float_of_int (i mod 89));
    sink :=
      !sink +. Gr_runtime.Feature_store.aggregate store ~key:"k" ~fn ~window_ns ~param
  done;
  let t1 = Unix.gettimeofday () in
  let bytes1 = Gc.allocated_bytes () in
  ignore !sink;
  let secs = Float.max 1e-9 (t1 -. t0) in
  (float_of_int iters /. secs, (bytes1 -. bytes0) /. float_of_int iters)

let run ~json =
  let smoke = !Common.smoke in
  let window = if smoke then 256 else 4096 in
  let iters = if smoke then 2_000 else 20_000 in
  (* The naive arm is the slow one; checks/sec is a rate, so it can
     run fewer iterations without biasing the comparison. *)
  let naive_iters = max 200 (iters / 20) in
  if not json then begin
    Common.section
      (Printf.sprintf "Ablation G — window aggregation, %d-sample window" window);
    Printf.printf "  %-10s %14s %14s %9s %12s %12s\n" "fn" "naive/s" "incr/s" "speedup"
      "naive B/chk" "incr B/chk"
  end;
  let rows =
    List.map
      (fun (fn, param) ->
        let naive_cps, naive_bytes = run_arm ~naive:true ~fn ~param ~window ~iters:naive_iters in
        let incr_cps, incr_bytes = run_arm ~naive:false ~fn ~param ~window ~iters in
        let speedup = incr_cps /. naive_cps in
        if not json then
          Printf.printf "  %-10s %14.0f %14.0f %8.1fx %12.1f %12.1f\n" (fn_name fn)
            naive_cps incr_cps speedup naive_bytes incr_bytes;
        (fn, param, naive_cps, incr_cps, speedup, naive_bytes, incr_bytes))
      all_fns
  in
  let streaming_min =
    List.fold_left
      (fun acc (fn, _, _, _, speedup, _, _) ->
        if fn = Gr_dsl.Ast.Quantile then acc else Float.min acc speedup)
      infinity rows
  in
  if json then
    let open Common.Json in
    Common.print_json
      (Obj
         [
           ("experiment", Str "agg");
           ("window_samples", Common.json_int window);
           ("window_ns", Num window_ns);
           ("min_streaming_speedup", Common.json_num streaming_min);
           ( "rows",
             Arr
               (List.map
                  (fun (fn, param, naive_cps, incr_cps, speedup, naive_b, incr_b) ->
                    Obj
                      [
                        ("fn", Str (fn_name fn));
                        ("param", Common.json_num param);
                        ("naive_checks_per_sec", Common.json_num naive_cps);
                        ("incremental_checks_per_sec", Common.json_num incr_cps);
                        ("speedup", Common.json_num speedup);
                        ("naive_bytes_per_check", Common.json_num naive_b);
                        ("incremental_bytes_per_check", Common.json_num incr_b);
                      ])
                  rows) );
         ])
  else
    Printf.printf "  min streaming speedup (QUANTILE excluded): %.1fx\n" streaming_min
