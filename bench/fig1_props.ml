(* Figure 1 (left table): the P1-P6 property taxonomy. For every
   property we run the subsystem the paper names for it twice — once
   healthy, once with the documented misbehaviour injected — and
   report whether the guardrail stayed quiet / detected the fault.
   The expected pattern is OK on the healthy column and DETECTED on
   the faulty column for every row. *)

open Gr_util
module Props = Gr_props.Props

let deployment_with_kernel seed =
  let kernel = Gr_kernel.Kernel.create ~seed in
  (kernel, Guardrails.Deployment.create ~kernel ~engine:!Common.engine ())

let stats_of d h = Guardrails.Engine.Stats.get (Guardrails.Deployment.engine d) h

(* P1: in-distribution inputs, on the LinnOS classifier. The monitored
   feature is the device's most recent service latency (the model's
   strongest input); the envelope comes from the training set. Aging
   the devices moves it far outside. *)
let p1 ~faulty =
  let kernel, d = deployment_with_kernel 101 in
  let devices =
    Array.init 2 (fun i ->
        Gr_kernel.Ssd.create ~rng:kernel.rng ~profile:Gr_kernel.Ssd.young_profile ~id:i)
  in
  let blk = Gr_kernel.Blk.create ~engine:kernel.engine ~hooks:kernel.hooks ~devices () in
  let model = Gr_policy.Linnos.train ~rng:kernel.rng ~devices () in
  Gr_kernel.Policy_slot.install (Gr_kernel.Blk.slot blk) ~name:"linnos"
    (Gr_policy.Linnos.policy model);
  let last_lat =
    Array.map (fun f -> f.(Array.length f - 1)) (Gr_policy.Linnos.training_features model)
  in
  let _lo, hi = Props.P1_in_distribution.envelope last_lat ~quantile:0.9 ~slack:3.0 () in
  Guardrails.Deployment.forward_hook_arg d ~hook:"blk:io_complete" ~arg:"latency_us"
    ~key:"io_latency_us" ();
  let src =
    Props.P1_in_distribution.source ~name:"p1-in-distribution" ~feature_key:"io_latency_us"
      ~lo:0. ~hi ~quantile:0.9 ~window:(Time_ns.ms 500) ~check_every:(Time_ns.ms 100)
      ~actions:[ {|REPORT("inputs drifted", io_latency_us)|} ] ()
  in
  let h = List.hd (Guardrails.Deployment.install_source_exn d src) in
  if faulty then
    Array.iter (fun dev -> Gr_kernel.Ssd.set_profile dev Gr_kernel.Ssd.aged_profile) devices;
  ignore
    (Gr_workload.Io_driver.start ~engine:kernel.engine ~rng:kernel.rng ~blk
       ~arrival:(Gr_workload.Arrival.poisson ~rate_per_sec:1000.)
       ~n_devices:2 ~until:(Time_ns.sec 2) ()
      : Gr_workload.Io_driver.t);
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 2);
  (stats_of d h).violations

(* P2: robustness of the learned congestion controller to noisy
   measurements. *)
let p2 ~faulty =
  let kernel, d = deployment_with_kernel 102 in
  let controller = Gr_policy.Cc_controller.train ~rng:kernel.rng () in
  if faulty then Gr_policy.Cc_controller.inject_sensitivity controller ~scale:100.;
  Props.P2_robustness.instrument_cc d controller ~rng:kernel.rng ~key:"cc_sensitivity"
    ~every:(Time_ns.ms 50);
  let src =
    Props.P2_robustness.source ~name:"p2-robustness" ~sensitivity_key:"cc_sensitivity" ~bound:10.
      ~window:(Time_ns.ms 500) ~check_every:(Time_ns.ms 100)
      ~actions:[ {|REPORT("model sensitive to noise", cc_sensitivity)|} ] ()
  in
  let h = List.hd (Guardrails.Deployment.install_source_exn d src) in
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 2);
  (stats_of d h).violations

(* P3: out-of-bounds outputs from the learned memory-quota advisor. *)
let p3 ~faulty =
  let kernel, d = deployment_with_kernel 103 in
  let mm = Gr_kernel.Mm.create ~engine:kernel.engine ~hooks:kernel.hooks ~fast_capacity:256 () in
  let advisor = Gr_policy.Quota_advisor.train ~rng:kernel.rng ~capacity:256 () in
  if faulty then Gr_policy.Quota_advisor.inject_drift advisor ~scale:4.;
  Guardrails.Deployment.forward_hook_arg d ~hook:"mm:quota" ~arg:"requested" ~key:"quota_req" ();
  let src =
    Props.P3_output_bounds.source ~name:"p3-output-bounds" ~hook:"mm:quota" ~key:"quota_req"
      ~lo:0. ~hi:256.
      ~actions:[ {|REPORT("illegal allocation", quota_req)|} ] ()
  in
  let h = List.hd (Guardrails.Deployment.install_source_exn d src) in
  let rng = Rng.fork kernel.rng in
  ignore
    (Gr_sim.Engine.every kernel.engine ~interval:(Time_ns.ms 100) (fun _ ->
         let q =
           Gr_policy.Quota_advisor.propose advisor ~miss_rate:(Rng.float rng 1.)
             ~occupancy:(Rng.float rng 1.)
         in
         ignore (Gr_kernel.Mm.advise_quota mm ~requested:q : [ `Applied of int | `Rejected ]))
      : Gr_sim.Engine.handle);
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 2);
  (stats_of d h).violations

(* P4: decision quality of learned cache replacement against the
   random-eviction floor. The fault is a hot-set shift that makes the
   model cling to stale keys. *)
let p4 ~faulty =
  let kernel, d = deployment_with_kernel 5 in
  let cache = Gr_kernel.Cache.create ~hooks:kernel.hooks ~capacity:128 in
  let zipf = Gr_workload.Mem_trace.zipfian ~rng:kernel.rng ~n_pages:2048 ~s:1.2 () in
  let trace = Array.init 30_000 (fun _ -> Gr_workload.Mem_trace.next zipf) in
  let model = Gr_policy.Cache_policy.train ~rng:kernel.rng ~hooks:kernel.hooks ~trace () in
  Gr_kernel.Policy_slot.install (Gr_kernel.Cache.slot cache) ~name:"learned-reuse"
    (Gr_policy.Cache_policy.policy model);
  Guardrails.Deployment.forward_hook_arg d ~hook:"cache:access" ~arg:"hit" ~key:"cache_hit" ();
  Props.P4_decision_quality.shadow_cache d ~capacity:128
    ~baseline:(Gr_kernel.Cache.random kernel.rng) ~hit_key:"shadow_hit";
  let src =
    Props.P4_decision_quality.source ~name:"p4-decision-quality" ~policy_key:"cache_hit"
      ~baseline_key:"shadow_hit" ~margin:0.02 ~window:(Time_ns.ms 400)
      ~check_every:(Time_ns.ms 100)
      ~actions:[ {|REPORT("below the random baseline", cache_hit, shadow_hit)|} ] ()
  in
  let h = List.hd (Guardrails.Deployment.install_source_exn d src) in
  ignore
    (Gr_sim.Engine.every kernel.engine ~interval:(Time_ns.us 50) (fun _ ->
         ignore (Gr_kernel.Cache.access cache ~key:(Gr_workload.Mem_trace.next zipf) : bool))
      : Gr_sim.Engine.handle);
  if faulty then
    ignore
      (Gr_sim.Engine.schedule_at kernel.engine (Time_ns.sec 1) (fun _ ->
           Gr_workload.Mem_trace.shift_hot_set zipf ~offset:1024)
        : Gr_sim.Engine.handle);
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 3);
  (stats_of d h).violations

(* P5: decision overhead. The fault swaps the light classifier for an
   over-parameterised one whose per-decision inference cost blows the
   budget. *)
let p5 ~faulty =
  let kernel, d = deployment_with_kernel 105 in
  let devices =
    Array.init 2 (fun i ->
        Gr_kernel.Ssd.create ~rng:kernel.rng ~profile:Gr_kernel.Ssd.young_profile ~id:i)
  in
  let blk = Gr_kernel.Blk.create ~engine:kernel.engine ~hooks:kernel.hooks ~devices () in
  let model = Gr_policy.Linnos.train ~rng:kernel.rng ~devices () in
  (* Simulated inference cost: MACs x 1ns, with the "deep" variant
     standing in for an unpruned model. *)
  let cost_ns =
    if faulty then 25_000. else float_of_int (Gr_policy.Linnos.inference_flops model)
  in
  let wrapped =
    Props.P5_overhead.wrap_blk_policy d ~key:"inference_ns" ~cost_ns
      (Gr_policy.Linnos.policy model)
  in
  Gr_kernel.Policy_slot.install (Gr_kernel.Blk.slot blk) ~name:"linnos" wrapped;
  let src =
    Props.P5_overhead.source ~name:"p5-overhead" ~cost_key:"inference_ns" ~budget_ns:5_000.
      ~window:(Time_ns.ms 500) ~check_every:(Time_ns.ms 100)
      ~actions:[ {|REPORT("inference over budget", inference_ns)|} ] ()
  in
  let h = List.hd (Guardrails.Deployment.install_source_exn d src) in
  ignore
    (Gr_workload.Io_driver.start ~engine:kernel.engine ~rng:kernel.rng ~blk
       ~arrival:(Gr_workload.Arrival.poisson ~rate_per_sec:1000.)
       ~n_devices:2 ~until:(Time_ns.sec 2) ()
      : Gr_workload.Io_driver.t);
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 2);
  (stats_of d h).violations

(* P6: fairness/liveness in the scheduler; the fault is the wild-slice
   policy. *)
let p6 ~faulty =
  let kernel, d = deployment_with_kernel 106 in
  let sched = Gr_kernel.Sched.create ~engine:kernel.engine ~hooks:kernel.hooks () in
  Guardrails.Deployment.wire_scheduler d sched;
  if faulty then
    Gr_kernel.Policy_slot.install (Gr_kernel.Sched.slot sched) ~name:"wild"
      (Gr_policy.Inject.wild_slices ~rng:kernel.rng ~max_ms:400);
  (* Load stays under 1 so the healthy (CFS) arm is feasible:
     40/s x 8ms + 0.2/s x 2s ~= 0.72 utilisation. *)
  Gr_workload.Taskset.run ~engine:kernel.engine ~rng:kernel.rng ~sched
    ~specs:
      [ Gr_workload.Taskset.interactive ~rate_per_sec:40.;
        Gr_workload.Taskset.batch ~rate_per_sec:0.2 ]
    ~until:(Time_ns.sec 2);
  let src =
    Props.P6_fairness.source ~name:"p6-fairness" ~max_wait_ms:100. ~min_jain:0.2
      ~check_every:(Time_ns.ms 50)
      ~actions:[ {|REPORT("starvation or unfairness", sched_max_wait_ms, sched_jain)|} ] ()
  in
  let h = List.hd (Guardrails.Deployment.install_source_exn d src) in
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 2);
  (stats_of d h).violations

let rows =
  [
    ("P1 in-distribution inputs", "LinnOS I/O classifier", "device aging (GC regime shift)", p1);
    ("P2 robustness", "learned congestion control", "unstable model (noise-sensitive)", p2);
    ("P3 out-of-bounds outputs", "memory quota advisor", "drifted regressor (x4 scale)", p3);
    ("P4 decision quality", "learned cache replacement", "hot-set shift", p4);
    ("P5 decision overhead", "LinnOS I/O classifier", "unpruned model (25us inference)", p5);
    ("P6 fairness and liveness", "CPU scheduler", "wild time-slice policy", p6);
  ]

let run () =
  Common.section "Figure 1 (left) — property taxonomy P1-P6: detection matrix";
  Printf.printf "%-28s %-28s %-34s %-10s %s\n" "property" "subsystem" "injected fault" "healthy"
    "faulty";
  List.iter
    (fun (name, subsystem, fault, f) ->
      let healthy = f ~faulty:false in
      let faulty = f ~faulty:true in
      Printf.printf "%-28s %-28s %-34s %-10s %s\n" name subsystem fault
        (if healthy = 0 then "OK" else Printf.sprintf "FLAGGED(%d)" healthy)
        (if faulty > 0 then Printf.sprintf "DETECTED(%d)" faulty else "MISSED"))
    rows
