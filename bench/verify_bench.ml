(* Ablation — cost of the grc verify passes as deployments grow.

   Two synthetic sweeps, timed wall-clock:

   - fixpoint: a ring of N monitors, each SAVing the next key from
     the previous one (LOAD(k_i) / 2 + 1), so every key depends on
     every other through the cycle and the dataflow solver must widen
     to terminate. Reports rounds/widenings and ms per deployment.

   - machine: P independent REPLACE/RESTORE storm pairs, the
     worst-case shape for the action-machine checker: the reachable
     state space doubles with every policy (2^P slot combinations)
     and each of the P GRL203 findings pays for counterexample
     schedule synthesis. Truncation at the default 4096-state cap is
     part of the result, not an error. *)

let chain_source n =
  String.concat "\n"
    (List.init n (fun i ->
         Printf.sprintf
           "guardrail c%d { trigger: { TIMER(0, 1s) } rule: { AVG(ext, 1s) < 100 } action: { \
            SAVE(k%d, LOAD(k%d) / 2 + 1) } }"
           i ((i + 1) mod n) i))

let storm_source pairs =
  String.concat "\n"
    (List.concat
       (List.init pairs (fun j ->
            [
              Printf.sprintf
                "guardrail breaker%d { trigger: { TIMER(0, 100ms) } rule: { \
                 QUANTILE(m%d_lat, 0.95, 100ms) < 900 } action: { REPLACE(\"p%d\") } }"
                j j j;
              Printf.sprintf
                "guardrail prober%d { trigger: { TIMER(50ms, 100ms) } rule: { LOAD(m%d_err) \
                 >= 1 } action: { RESTORE(\"p%d\") } }"
                j j j;
            ])))

let compile src =
  let spec = Gr_dsl.Parser.parse_exn src in
  List.map Gr_compiler.Opt.optimize_monitor (Gr_compiler.Lower.spec spec)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1e3)

let run () =
  Common.section "Ablation — grc verify pass cost (dataflow fixpoint, model checking)";
  let smoke = !Common.smoke in
  Printf.printf "%-10s %9s %6s %7s %10s %9s\n" "fixpoint" "monitors" "keys" "rounds"
    "widenings" "wall(ms)";
  List.iter
    (fun n ->
      let monitors = compile (chain_source n) in
      let df, ms = timed (fun () -> Gr_analysis.Dataflow.fixpoint monitors) in
      if not (Gr_analysis.Dataflow.is_post_fixpoint monitors df) then
        failwith "verify bench: fixpoint is not a post-fixpoint";
      Printf.printf "%-10s %9d %6d %7d %10d %9.2f\n" "" n
        (List.length df.Gr_analysis.Dataflow.keys)
        df.Gr_analysis.Dataflow.rounds df.Gr_analysis.Dataflow.widenings ms)
    (if smoke then [ 8; 32 ] else [ 8; 32; 128; 512 ]);
  print_newline ();
  Printf.printf "%-10s %9s %7s %12s %7s %6s %9s\n" "machine" "monitors" "states"
    "transitions" "storms" "trunc" "wall(ms)";
  List.iter
    (fun pairs ->
      let monitors = compile (storm_source pairs) in
      let result, ms = timed (fun () -> Gr_analysis.Machine.check monitors) in
      Printf.printf "%-10s %9d %7d %12d %7d %6s %9.2f\n" "" (2 * pairs)
        result.Gr_analysis.Machine.states result.Gr_analysis.Machine.transitions
        (List.length result.Gr_analysis.Machine.findings)
        (if result.Gr_analysis.Machine.truncated then "yes" else "no")
        ms)
    (if smoke then [ 1; 2; 4 ] else [ 1; 2; 4; 8; 12 ])
