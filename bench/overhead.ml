(* Ablation A — monitor overhead.

   Two parts:
   1. Host-clock microbenchmarks (Bechamel) of the pieces that run on
      kernel hot paths: VM rule evaluation at several rule sizes,
      with and without CSE, windowed aggregation at several window
      populations, and feature-store save/load.
   2. The TIMER sampling-interval trade-off the paper's §4.1 calls
      out ("TIMER allows systematic sampling in order to regulate the
      overhead of checking"): sweeping the Listing 2 check interval
      against detection latency and total checking work on the
      Figure 2 scenario. *)

open Gr_util
open Bechamel
open Toolkit

let make_store ~samples_per_key =
  let clock = ref 0 in
  let store = Gr_runtime.Feature_store.create ~clock:(fun () -> !clock) () in
  List.iter
    (fun key ->
      for i = 1 to samples_per_key do
        clock := i * 100_000;
        Gr_runtime.Feature_store.save store key (float_of_int i)
      done)
    [ "a"; "b"; "c"; "d" ];
  clock := samples_per_key * 100_000;
  store

let compile_rule ?(optimize = true) src =
  let spec =
    Gr_dsl.Parser.parse_exn
      (Printf.sprintf
         {|guardrail g { trigger: { TIMER(0, 1s) } rule: { %s } action: { REPORT("m") } }|} src)
  in
  let m = List.hd (Gr_compiler.Lower.spec spec) in
  let m = if optimize then Gr_compiler.Opt.optimize_monitor m else m in
  (m.Gr_compiler.Monitor.rule, m.Gr_compiler.Monitor.slots)

let rule_of_terms n =
  String.concat " && "
    (List.init n (fun i -> Printf.sprintf "LOAD(%s) + %d < 1000000" [| "a"; "b"; "c"; "d" |].(i mod 4) i))

let vm_tests =
  let store = make_store ~samples_per_key:16 in
  let store_1k = make_store ~samples_per_key:1000 in
  let bench_rule name ?(optimize = true) ~store src =
    let rule, slots = compile_rule ~optimize src in
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Gr_runtime.Vm.run ~store ~slots rule : Gr_runtime.Vm.result)))
  in
  [
    bench_rule "rule/1-term" ~store (rule_of_terms 1);
    bench_rule "rule/8-terms" ~store (rule_of_terms 8);
    bench_rule "rule/32-terms" ~store (rule_of_terms 32);
    bench_rule "agg/window-16" ~store "AVG(a, 10s) < 1000";
    bench_rule "agg/window-1000" ~store:store_1k "AVG(a, 200s) < 1000";
    bench_rule "agg/8x-same-cse" ~store
      (String.concat " && " (List.init 8 (fun i -> Printf.sprintf "AVG(a, 10s) < %d" (1000 + i))));
    bench_rule "agg/8x-same-nocse" ~optimize:false ~store
      (String.concat " && " (List.init 8 (fun i -> Printf.sprintf "AVG(a, 10s) < %d" (1000 + i))));
  ]

let store_tests =
  let store = make_store ~samples_per_key:16 in
  let counter = ref 0. in
  [
    Test.make ~name:"store/save"
      (Staged.stage (fun () ->
           counter := !counter +. 1.;
           Gr_runtime.Feature_store.save store "bench_key" !counter));
    Test.make ~name:"store/load"
      (Staged.stage (fun () -> ignore (Gr_runtime.Feature_store.load store "a" : float)));
  ]

let run_bechamel tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false () in
  let grouped = Test.make_grouped ~name:"guardrails" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> Printf.printf "  %-28s %10.1f ns/run\n" name ns
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    (List.sort compare rows)

let run () =
  Common.section "Ablation A — monitor overhead";
  print_endline "VM and feature-store microbenchmarks (host clock):";
  run_bechamel (vm_tests @ store_tests);
  print_endline "";
  print_endline "TIMER interval sweep on the Figure 2 scenario:";
  Printf.printf "  %-10s %-18s %-10s %-16s\n" "interval" "detection delay" "checks"
    "est. check cost";
  List.iter
    (fun interval_ns ->
      let rig = Common.make_fig2_rig ~seed:7 () in
      let src =
        Printf.sprintf
          {|guardrail sweep { trigger: { TIMER(0, %d) } rule: { LOAD(false_submit_rate) <= 0.05 } action: { REPORT("over"); SAVE(ml_enabled, false) } }|}
          interval_ns
      in
      let handles = Guardrails.Deployment.install_source_exn rig.deployment src in
      Gr_kernel.Kernel.run_until rig.kernel Common.run_until;
      let stats =
        Guardrails.Engine.Stats.get (Guardrails.Deployment.engine rig.deployment) (List.hd handles)
      in
      let detection =
        match Common.first_violation rig.deployment with
        | Some at -> Format.asprintf "%a" Time_ns.pp (Time_ns.diff at Common.aging_at)
        | None -> "never"
      in
      Printf.printf "  %-10s %-18s %-10d %12.0f ns\n"
        (Format.asprintf "%a" Time_ns.pp interval_ns)
        detection stats.checks stats.overhead_ns)
    [ Time_ns.ms 10; Time_ns.ms 100; Time_ns.sec 1; Time_ns.sec 5 ]
