(* Ablation A — monitor overhead.

   Two parts:
   1. Host-clock microbenchmarks (Bechamel) of the pieces that run on
      kernel hot paths: VM rule evaluation at several rule sizes,
      with and without CSE, windowed aggregation at several window
      populations, and feature-store save/load.
   2. The TIMER sampling-interval trade-off the paper's §4.1 calls
      out ("TIMER allows systematic sampling in order to regulate the
      overhead of checking"): sweeping the Listing 2 check interval
      against detection latency and total checking work on the
      Figure 2 scenario. *)

open Gr_util
open Bechamel
open Toolkit

let make_store ~samples_per_key =
  let clock = ref 0 in
  let store = Gr_runtime.Feature_store.create ~clock:(fun () -> !clock) () in
  List.iter
    (fun key ->
      for i = 1 to samples_per_key do
        clock := i * 100_000;
        Gr_runtime.Feature_store.save store key (float_of_int i)
      done)
    [ "a"; "b"; "c"; "d" ];
  clock := samples_per_key * 100_000;
  store

let compile_rule ?(optimize = true) src =
  let spec =
    Gr_dsl.Parser.parse_exn
      (Printf.sprintf
         {|guardrail g { trigger: { TIMER(0, 1s) } rule: { %s } action: { REPORT("m") } }|} src)
  in
  let m = List.hd (Gr_compiler.Lower.spec spec) in
  let m = if optimize then Gr_compiler.Opt.optimize_monitor m else m in
  (m.Gr_compiler.Monitor.rule, m.Gr_compiler.Monitor.slots)

let rule_of_terms n =
  String.concat " && "
    (List.init n (fun i -> Printf.sprintf "LOAD(%s) + %d < 1000000" [| "a"; "b"; "c"; "d" |].(i mod 4) i))

let vm_tests =
  let store = make_store ~samples_per_key:16 in
  let store_1k = make_store ~samples_per_key:1000 in
  let bench_rule name ?(optimize = true) ~store src =
    let rule, slots = compile_rule ~optimize src in
    Test.make ~name
      (Staged.stage (fun () ->
           ignore (Gr_runtime.Vm.run ~store ~slots rule : Gr_runtime.Vm.result)))
  in
  [
    bench_rule "rule/1-term" ~store (rule_of_terms 1);
    bench_rule "rule/8-terms" ~store (rule_of_terms 8);
    bench_rule "rule/32-terms" ~store (rule_of_terms 32);
    bench_rule "agg/window-16" ~store "AVG(a, 10s) < 1000";
    bench_rule "agg/window-1000" ~store:store_1k "AVG(a, 200s) < 1000";
    bench_rule "agg/8x-same-cse" ~store
      (String.concat " && " (List.init 8 (fun i -> Printf.sprintf "AVG(a, 10s) < %d" (1000 + i))));
    bench_rule "agg/8x-same-nocse" ~optimize:false ~store
      (String.concat " && " (List.init 8 (fun i -> Printf.sprintf "AVG(a, 10s) < %d" (1000 + i))));
  ]

let store_tests =
  let store = make_store ~samples_per_key:16 in
  let counter = ref 0. in
  [
    Test.make ~name:"store/save"
      (Staged.stage (fun () ->
           counter := !counter +. 1.;
           Gr_runtime.Feature_store.save store "bench_key" !counter));
    Test.make ~name:"store/load"
      (Staged.stage (fun () -> ignore (Gr_runtime.Feature_store.load store "a" : float)));
  ]

(* Runs the Bechamel suite and returns [(name, ns_per_run option)]
   rows, sorted by name, so the caller can render them as a table or
   as JSON. *)
let run_bechamel tests =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false () in
  let grouped = Test.make_grouped ~name:"guardrails" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.sort compare rows
  |> List.map (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some [ ns ] -> (name, Some ns)
         | _ -> (name, None))

type sweep_row = {
  interval_ns : Time_ns.t;
  detection_delay : Time_ns.t option;
  checks : int;
  overhead_ns : float;
  monitors : Common.Json.t;  (** per-monitor gr_trace telemetry *)
}

let sweep_intervals = [ Time_ns.ms 10; Time_ns.ms 100; Time_ns.sec 1; Time_ns.sec 5 ]

let run_sweep_row interval_ns =
  let rig = Common.make_fig2_rig ~seed:7 () in
  let src =
    Printf.sprintf
      {|guardrail sweep { trigger: { TIMER(0, %d) } rule: { LOAD(false_submit_rate) <= 0.05 } action: { REPORT("over"); SAVE(ml_enabled, false) } }|}
      interval_ns
  in
  let handles = Guardrails.Deployment.install_source_exn rig.deployment src in
  Gr_kernel.Kernel.run_until rig.kernel Common.run_until;
  let stats =
    Guardrails.Engine.Stats.get (Guardrails.Deployment.engine rig.deployment) (List.hd handles)
  in
  let detection_delay =
    Option.map
      (fun at -> Time_ns.diff at Common.aging_at)
      (Common.first_violation rig.deployment)
  in
  {
    interval_ns;
    detection_delay;
    checks = stats.checks;
    overhead_ns = stats.overhead_ns;
    monitors = Common.monitors_json rig.deployment;
  }

let json_output micro sweep : Common.Json.t =
  let open Common.Json in
  Obj
    [
      ("experiment", Str "overhead");
      ( "microbench",
        Arr
          (List.map
             (fun (name, ns) ->
               Obj
                 [
                   ("name", Str name);
                   ("ns_per_run", match ns with Some v -> Common.json_num v | None -> Null);
                 ])
             micro) );
      ( "interval_sweep",
        Arr
          (List.map
             (fun r ->
               Obj
                 [
                   ("interval_ns", Common.json_int r.interval_ns);
                   ( "detection_delay_ns",
                     match r.detection_delay with Some d -> Common.json_int d | None -> Null );
                   ("checks", Common.json_int r.checks);
                   ("est_check_cost_ns", Common.json_num r.overhead_ns);
                   ("monitors", r.monitors);
                 ])
             sweep) );
    ]

let run ~json =
  if not json then Common.section "Ablation A — monitor overhead";
  let micro = run_bechamel (vm_tests @ store_tests) in
  let sweep = List.map run_sweep_row sweep_intervals in
  if json then Common.print_json (json_output micro sweep)
  else begin
    print_endline "VM and feature-store microbenchmarks (host clock):";
    List.iter
      (fun (name, ns) ->
        match ns with
        | Some ns -> Printf.printf "  %-28s %10.1f ns/run\n" name ns
        | None -> Printf.printf "  %-28s (no estimate)\n" name)
      micro;
    print_endline "";
    print_endline "TIMER interval sweep on the Figure 2 scenario:";
    Printf.printf "  %-10s %-18s %-10s %-16s\n" "interval" "detection delay" "checks"
      "est. check cost";
    List.iter
      (fun r ->
        let detection =
          match r.detection_delay with
          | Some d -> Format.asprintf "%a" Time_ns.pp d
          | None -> "never"
        in
        Printf.printf "  %-10s %-18s %-10d %12.0f ns\n"
          (Format.asprintf "%a" Time_ns.pp r.interval_ns)
          detection r.checks r.overhead_ns)
      sweep
  end
