(* Listings 1 and 2: the specification language. Parses the paper's
   example verbatim, pretty-prints the canonical form, disassembles
   the compiled monitor and prints the verifier's certificate. *)

let run () =
  Common.section "Listings 1-2 — guardrail specification, compilation and verification";
  print_endline "source (paper's Listing 2, plus a REPORT):";
  print_string Common.listing2_source;
  print_endline "";
  match Guardrails.Compile.source Common.listing2_source with
  | Error e -> Format.printf "COMPILE ERROR: %a@." Guardrails.Compile.pp_error e
  | Ok monitors ->
    List.iter
      (fun m ->
        print_endline "compiled monitor:";
        Format.printf "%a" Guardrails.Monitor.pp m;
        (match Guardrails.Verify.verify m with
        | Ok stats ->
          Printf.printf
            "verifier: ACCEPTED (%d rule insts, %d total insts, %d slots, %d actions, est. \
             %.0fns/check; straight-line, single-assignment, bounded windows)\n"
            stats.rule_insts stats.total_insts stats.n_slots stats.n_actions stats.est_cost_ns
        | Error errs ->
          print_endline "verifier: REJECTED";
          List.iter (fun e -> Printf.printf "  %s\n" e) errs);
        Printf.printf "reads: {%s}  writes: {%s}\n"
          (String.concat ", " (Guardrails.Monitor.reads m))
          (String.concat ", " (Guardrails.Monitor.writes m)))
      monitors;
    (* Also demonstrate rejection: the verifier refusing an unbounded
       monitor is the loader-side safety story. *)
    print_endline "";
    print_endline "verifier rejection example (unbounded window):";
    let bad =
      {|guardrail unbounded { trigger: { TIMER(0, 1s) } rule: { AVG(lat, 3600s) < 10 } action: { REPORT("x") } }|}
    in
    (match Guardrails.Compile.source bad with
    | Ok _ -> print_endline "  unexpectedly accepted!"
    | Error e -> Format.printf "  %a@." Guardrails.Compile.pp_error e)
