(* Benchmark harness: regenerates every figure, table and listing in
   the paper's evaluation plus the ablations documented in DESIGN.md.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig2      # one experiment

   Experiments:
     fig2         Figure 2 latency series (LinnOS vs guardrailed)
     fig1-props   Figure 1 left: P1-P6 detection matrix
     fig1-actions Figure 1 right: A1-A4 actions applied
     listing2     Listings 1-2: compile + verify the example spec
     overhead     Ablation A: VM microbenchmarks + interval sweep
     deps         Ablation B: timer vs dependency triggering
     oscillation  Ablation C: guardrail feedback loops
     incremental  Ablation D: incremental deployment
     compile-stats Ablation E: compiler statistics over specs/
     scale        Ablation F: monitor-count scalability (incl. fleet sweep)
     obs          Ablation G: observability self-overhead (provenance, metrics)
     agg          Ablation G: naive vs incremental window aggregation
     fleet        Ablation H: fleet-wide merged aggregation + canary
     soak         Chaos soak: fault injection vs guardrail invariants
     verify       Ablation I: grc verify pass cost (fixpoint, model checking)
     serve        Ablation J: live control-plane rollout lifecycle cost
     tiers        Execution tiers: ns/check by tier x monitor count

   With --json, experiments that support it (fig2, overhead, scale,
   agg) print one machine-readable JSON document to stdout instead of
   the human tables, with per-monitor telemetry sourced from gr_trace —
   the BENCH_*.json perf-trajectory format. fig2 --json additionally
   writes fig2_trace.json, a Chrome trace_event file of the guarded
   arm. --smoke shrinks sweep sizes so the suite finishes in seconds
   (the [make bench-smoke] CI mode). *)

let experiments : (string * (json:bool -> unit)) list =
  [
    ("fig2", Fig2.run);
    ("fig1-props", fun ~json:_ -> Fig1_props.run ());
    ("fig1-actions", fun ~json:_ -> Fig1_actions.run ());
    ("listing2", fun ~json:_ -> Listing2.run ());
    ("overhead", Overhead.run);
    ("deps", fun ~json:_ -> Deps_ablation.run ());
    ("oscillation", fun ~json:_ -> Oscillation.run ());
    ("incremental", fun ~json:_ -> Incremental.run ());
    ("compile-stats", fun ~json:_ -> Compile_stats.run ());
    ("scale", Scale.run);
    ("obs", Obs.run);
    ("agg", Agg.run);
    ("fleet", Fleet_bench.run);
    ("soak", Soak.run);
    ("verify", fun ~json:_ -> Verify_bench.run ());
    ("serve", Serve_bench.run);
    ("tiers", Tiers.run);
  ]

let set_engine v =
  match Guardrails.Vm.tier_of_string v with
  | Some t -> Common.engine := t
  | None ->
    Printf.eprintf "bench: --engine expects tree, reg or jit (got %s)\n" v;
    exit 2

(* --engine TIER / --engine=TIER pins the monitor execution tier for
   every deployment the experiments build; figures are tier-invariant
   (make jit-smoke byte-diffs fig2 across all three). *)
let rec strip_engine acc = function
  | [] -> List.rev acc
  | "--engine" :: v :: rest ->
    set_engine v;
    strip_engine acc rest
  | a :: rest when String.length a > 9 && String.sub a 0 9 = "--engine=" ->
    set_engine (String.sub a 9 (String.length a - 9));
    strip_engine acc rest
  | a :: rest -> strip_engine (a :: acc) rest

let () =
  let args = strip_engine [] (List.tl (Array.to_list Sys.argv)) in
  let json = List.mem "--json" args in
  Common.smoke := List.mem "--smoke" args;
  let requested = List.filter (fun a -> a <> "--json" && a <> "--smoke") args in
  match requested with
  | [] -> List.iter (fun (_, run) -> run ~json) experiments
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some run -> run ~json
        | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
      names
