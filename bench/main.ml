(* Benchmark harness: regenerates every figure, table and listing in
   the paper's evaluation plus the ablations documented in DESIGN.md.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig2      # one experiment

   Experiments:
     fig2         Figure 2 latency series (LinnOS vs guardrailed)
     fig1-props   Figure 1 left: P1-P6 detection matrix
     fig1-actions Figure 1 right: A1-A4 actions applied
     listing2     Listings 1-2: compile + verify the example spec
     overhead     Ablation A: VM microbenchmarks + interval sweep
     deps         Ablation B: timer vs dependency triggering
     oscillation  Ablation C: guardrail feedback loops
     incremental  Ablation D: incremental deployment
     compile-stats Ablation E: compiler statistics over specs/
     scale        Ablation F: monitor-count scalability *)

let experiments =
  [
    ("fig2", Fig2.run);
    ("fig1-props", Fig1_props.run);
    ("fig1-actions", Fig1_actions.run);
    ("listing2", Listing2.run);
    ("overhead", Overhead.run);
    ("deps", Deps_ablation.run);
    ("oscillation", Oscillation.run);
    ("incremental", Incremental.run);
    ("compile-stats", Compile_stats.run);
    ("scale", Scale.run);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  match requested with
  | [] -> List.iter (fun (_, run) -> run ()) experiments
  | names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some run -> run ()
        | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
      names
