(* Ablation J — cost of the live control plane (grc serve).

   Three questions about the versioned spec lifecycle, answered on an
   idle fleet so the numbers isolate the control plane itself:

   - push: host latency of one admission (parse, lint/verify static
     analysis, compile, stage) — the synchronous work a client waits
     for on the socket before the admission decision comes back;
   - rollout: host cost of a full canary cycle (install at the first
     barrier, verdicts, promote) and of a rollback cycle for a
     guardrail-violating spec;
   - steady tax: host sec/sim sec of the same fleet advancing with
     the lifecycle's barrier hook registered vs bare. The hook only
     inspects engine stats at epoch boundaries, so this ratio is the
     whole per-epoch price of keeping rollouts gated — expected ~1.0.

   Output row per fleet size; --json appends the BENCH_scale.json
   perf-trajectory line ("experiment": "serve"). *)

open Gr_util
module L = Guardrails.Lifecycle
module Fleet = Guardrails.Fleet

let boot_spec =
  {|
guardrail serve-tail {
  trigger: { TIMER(0, 100ms) },
  rule: { COUNT(latency_us, 1s) == 0 || QUANTILE(latency_us, 0.99, 1s) <= 1e9 },
  action: {
    REPORT("p99 degraded", latency_us)
    REPLACE("lat_predictor")
  }
}
|}

(* Same shapes, new threshold: the promotable push. *)
let good_spec =
  {|
guardrail serve-tail {
  trigger: { TIMER(0, 100ms) },
  rule: { COUNT(latency_us, 1s) == 0 || QUANTILE(latency_us, 0.99, 1s) <= 5e8 },
  action: {
    REPORT("p99 degraded", latency_us)
    REPLACE("lat_predictor")
  }
}
|}

(* Violates the fire-rate guardrail at runtime (idle sim, missing
   heartbeat), so every rollout of it ends in a rollback. *)
let hot_spec =
  {|
guardrail serve-heartbeat {
  trigger: { TIMER(0, 10ms) },
  rule: { COUNT(serve_heartbeat, 1s) >= 1 },
  action: {
    REPORT("no heartbeat", serve_heartbeat)
    REPLACE("lat_predictor")
  }
}
|}

let ms f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1e3

let make_fleet nodes =
  let fleet = Fleet.create ~nodes ~seed:7 ~engine:!Common.engine () in
  let lc = L.create ~config:{ L.default_config with canary_barriers = 1 } (L.Fleet fleet) in
  (match L.boot lc ~who:"bench" boot_spec with
  | Ok _ -> ()
  | Error e -> Fmt.failwith "serve bench boot: %a" Guardrails.Deployment.pp_error e);
  (fleet, lc)

let advance fleet n =
  for _ = 1 to n do
    Fleet.run_until fleet
      (Time_ns.add (Guardrails.Sim.now (Fleet.sim fleet)) Fleet.default_epoch)
  done

type row = {
  nodes : int;
  push_ms : float;  (* admission latency, mean over cycles *)
  promote_ms : float;  (* host cost of install + verdict + promote barriers *)
  rollback_ms : float;  (* host cost of install + verdict + rollback barriers *)
  steady_ratio : float;  (* hooked host time / bare host time, same sim span *)
  promotions : int;
  rollbacks : int;
}

let run_size ~cycles ~steady_epochs nodes =
  let fleet, lc = make_fleet nodes in
  (* Interleave promote and rollback cycles; each cycle = one push
     (timed alone: the client-visible admission latency) plus two
     barriers (install, then the verdict that promotes or rolls
     back). canary_barriers = 1 keeps the cycle minimal. *)
  let push_t = ref 0. and promote_t = ref 0. and rollback_t = ref 0. in
  for cycle = 1 to cycles do
    let spec = if cycle land 1 = 0 then hot_spec else good_spec in
    (push_t :=
       !push_t
       +. ms (fun () ->
              match L.push lc ~who:"bench" spec with
              | L.Admitted _ -> ()
              | L.Rejected { reason; _ } -> Fmt.failwith "bench push rejected: %s" reason));
    let cycle_ms = ms (fun () -> advance fleet 2) in
    if cycle land 1 = 0 then rollback_t := !rollback_t +. cycle_ms
    else promote_t := !promote_t +. cycle_ms
  done;
  let per_kind = float_of_int ((cycles + 1) / 2) in
  (* Steady tax: same fleet construction, same sim span, with and
     without the lifecycle hook. The hooked fleet steps in
     epoch-sized chunks (the barrier contract), so the bare baseline
     is driven through identical chunks and the ratio isolates the
     decision check itself. *)
  let bare = Fleet.create ~nodes ~seed:7 ~engine:!Common.engine () in
  Fleet.install_source_exn bare boot_spec |> ignore;
  (* Both arms are cheap at idle, so warm each and keep the best of
     three timings to push allocator/GC jitter out of the ratio. *)
  let best f =
    advance f steady_epochs |> ignore;
    let m = ref infinity in
    for _ = 1 to 3 do
      m := Float.min !m (ms (fun () -> advance f steady_epochs))
    done;
    !m
  in
  let bare_ms = best bare in
  let hooked_ms = best fleet in
  {
    nodes;
    push_ms = !push_t /. float_of_int cycles;
    promote_ms = !promote_t /. per_kind;
    rollback_ms = !rollback_t /. per_kind;
    steady_ratio = (if bare_ms > 0. then hooked_ms /. bare_ms else 1.);
    promotions = L.promotions lc;
    rollbacks = L.rollbacks lc;
  }

let run ~json =
  let sizes = if !Common.smoke then [ 1; 4 ] else [ 1; 4; 16 ] in
  let cycles = if !Common.smoke then 4 else 20 in
  let steady_epochs = if !Common.smoke then 40 else 400 in
  let rows = List.map (run_size ~cycles ~steady_epochs) sizes in
  if json then begin
    let module J = Guardrails.Json in
    let row r =
      J.Obj
        [
          ("nodes", J.Num (float_of_int r.nodes));
          ("push_admit_ms", J.Num r.push_ms);
          ("promote_cycle_ms", J.Num r.promote_ms);
          ("rollback_cycle_ms", J.Num r.rollback_ms);
          ("steady_hook_ratio", J.Num r.steady_ratio);
          ("promotions", J.Num (float_of_int r.promotions));
          ("rollbacks", J.Num (float_of_int r.rollbacks));
        ]
    in
    print_endline
      (J.to_string
         (J.Obj
            [
              ("experiment", J.Str "serve");
              ("host_cores", J.Num (float_of_int Common.host_cores));
              ("cycles", J.Num (float_of_int cycles));
              ("steady_epochs", J.Num (float_of_int steady_epochs));
              ("rows", J.Arr (List.map row rows));
            ]))
  end
  else begin
    Common.section "Ablation — live control plane (grc serve rollout lifecycle)";
    Printf.printf "  %5s  %14s  %16s  %17s  %16s\n" "nodes" "push admit ms" "promote cycle ms"
      "rollback cycle ms" "steady hook tax";
    List.iter
      (fun r ->
        Printf.printf "  %5d  %14.3f  %16.3f  %17.3f  %15.2fx\n" r.nodes r.push_ms r.promote_ms
          r.rollback_ms r.steady_ratio)
      rows;
    Printf.printf
      "  (%d push cycles per size, alternating promote/rollback; steady tax over %d epochs)\n"
      cycles steady_epochs
  end
