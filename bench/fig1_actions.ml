(* Figure 1 (right table): the A1-A4 action taxonomy. Each action is
   exercised through a compiled guardrail against the subsystem from
   its example column, and we report the observable effect:

   A1 REPORT       - violation records with key snapshots
   A2 REPLACE      - the policy slot switches to its fallback
   A3 RETRAIN      - an asynchronous retrain runs (rate-limited)
   A4 DEPRIORITIZE - the batch class's weight drops, waits recover *)

open Gr_util

let a1_report () =
  let rig = Common.make_fig2_rig ~seed:11 () in
  let src =
    {|
guardrail a1-report {
  trigger: { TIMER(0, 500ms) }
  rule: { LOAD(false_submit_rate) <= 0.05 }
  action: { REPORT("false submits above 5%", false_submit_rate, false_submit) }
}
|}
  in
  ignore
    (Guardrails.Deployment.install_source_exn rig.deployment src : Guardrails.Engine.handle list);
  Gr_kernel.Kernel.run_until rig.kernel Common.run_until;
  let viols = Guardrails.Engine.violations (Guardrails.Deployment.engine rig.deployment) in
  Printf.printf "A1 REPORT: %d violation records logged" (List.length viols);
  (match viols with
  | v :: _ ->
    Format.printf "; first at %a with snapshot [%s]@." Time_ns.pp v.Guardrails.Engine.at
      (String.concat "; "
         (List.map (fun (k, x) -> Printf.sprintf "%s=%.3f" k x) v.Guardrails.Engine.snapshot))
  | [] -> print_newline ());
  (* The model keeps running: REPORT alone does not correct. *)
  Printf.printf "   model still enabled (A1 does not mitigate): %b\n"
    (Gr_policy.Linnos.enabled rig.model)

let a2_replace () =
  let rig = Common.make_fig2_rig ~seed:12 () in
  (* REPLACE swaps the block-layer slot to its hedge fallback via the
     policy registry. *)
  Gr_kernel.Kernel.register_policy rig.kernel ~name:"blk-submission"
    ~replace:(fun () -> Gr_kernel.Policy_slot.use_fallback (Gr_kernel.Blk.slot rig.blk))
    ~restore:(fun () -> Gr_kernel.Policy_slot.restore (Gr_kernel.Blk.slot rig.blk))
    ();
  let src =
    {|
guardrail a2-replace {
  trigger: { TIMER(0, 500ms) }
  rule: { LOAD(false_submit_rate) <= 0.05 }
  action: { REPLACE("blk-submission") }
}
|}
  in
  ignore
    (Guardrails.Deployment.install_source_exn rig.deployment src : Guardrails.Engine.handle list);
  Gr_kernel.Kernel.run_until rig.kernel Common.run_until;
  let slot = Gr_kernel.Blk.slot rig.blk in
  Printf.printf "A2 REPLACE: slot %s now runs %S (on fallback: %b); transitions: %s\n"
    (Gr_kernel.Policy_slot.name slot)
    (Gr_kernel.Policy_slot.current_name slot)
    (Gr_kernel.Policy_slot.on_fallback slot)
    (String.concat ", "
       (List.map (fun (a, b) -> a ^ "->" ^ b) (Gr_kernel.Policy_slot.transitions slot)))

let a3_retrain () =
  let rig = Common.make_fig2_rig ~seed:13 () in
  let src =
    {|
guardrail a3-retrain {
  trigger: { TIMER(0, 500ms) }
  rule: { LOAD(false_submit_rate) <= 0.05 }
  action: { RETRAIN("linnos") }
}
|}
  in
  ignore
    (Guardrails.Deployment.install_source_exn rig.deployment src : Guardrails.Engine.handle list);
  let stale_acc = ref 0. in
  ignore
    (Gr_sim.Engine.schedule_at rig.kernel.engine (Time_ns.add Common.aging_at (Time_ns.ms 1))
       (fun _ -> stale_acc := Gr_policy.Linnos.holdout_accuracy rig.model)
      : Gr_sim.Engine.handle);
  Gr_kernel.Kernel.run_until rig.kernel Common.run_until;
  Printf.printf
    "A3 RETRAIN: %d retrain(s) ran (rate limited to 1/s); accuracy on aged regime %.1f%% -> %.1f%%\n"
    (Gr_policy.Linnos.retrain_count rig.model)
    (100. *. !stale_acc)
    (100. *. Gr_policy.Linnos.holdout_accuracy rig.model)

let a4_deprioritize () =
  let kernel = Gr_kernel.Kernel.create ~seed:14 in
  let sched = Gr_kernel.Sched.create ~engine:kernel.engine ~hooks:kernel.hooks () in
  let d = Guardrails.Deployment.create ~kernel ~engine:!Common.engine () in
  Guardrails.Deployment.wire_scheduler d sched;
  Gr_kernel.Policy_slot.install (Gr_kernel.Sched.slot sched) ~name:"learned-slice"
    (Gr_policy.Slice_policy.policy (Gr_policy.Slice_policy.train ~rng:kernel.rng ()));
  let src =
    {|
guardrail a4-deprioritize {
  trigger: { TIMER(0, 50ms) }
  rule: { LOAD(sched_max_wait_ms) <= 100 }
  action: { DEPRIORITIZE("batch", 64) }
}
|}
  in
  ignore (Guardrails.Deployment.install_source_exn d src : Guardrails.Engine.handle list);
  Gr_workload.Taskset.run ~engine:kernel.engine ~rng:kernel.rng ~sched
    ~specs:[ Gr_workload.Taskset.interactive ~rate_per_sec:40. ]
    ~until:(Time_ns.sec 3);
  ignore
    (Gr_sim.Engine.schedule_at kernel.engine (Time_ns.sec 1) (fun _ ->
         for i = 1 to 24 do
           ignore
             (Gr_kernel.Sched.spawn sched
                ~name:(Printf.sprintf "batch-%d" i)
                ~cls:"batch" ~demand:(Time_ns.sec 2) ()
               : Gr_kernel.Sched.task)
         done)
      : Gr_sim.Engine.handle);
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 3);
  let batch_weights =
    List.filter_map
      (fun (t : Gr_kernel.Sched.task) -> if t.cls = "batch" then Some t.weight else None)
      (Gr_kernel.Sched.tasks sched)
  in
  let deprioritized = List.length (List.filter (fun w -> w = 64) batch_weights) in
  Printf.printf "A4 DEPRIORITIZE: %d/%d batch tasks dropped to weight 64; max wait now %.0fms\n"
    deprioritized (List.length batch_weights)
    (Gr_kernel.Sched.max_wait_ms sched)

(* A4's drastic form: if starvation persists after deprioritisation,
   a second (escalation) guardrail kills the batch class — the OOM-
   killer analogy the paper draws. *)
let a4_kill_escalation () =
  let kernel = Gr_kernel.Kernel.create ~seed:15 in
  let sched = Gr_kernel.Sched.create ~engine:kernel.engine ~hooks:kernel.hooks () in
  let d = Guardrails.Deployment.create ~kernel ~engine:!Common.engine () in
  Guardrails.Deployment.wire_scheduler d sched;
  (* A slice policy that keeps starving even at low weights: fixed
     long slices, so deprioritisation alone cannot restore liveness. *)
  Gr_kernel.Policy_slot.install (Gr_kernel.Sched.slot sched) ~name:"long-slices"
    {
      Gr_kernel.Sched.policy_name = "long-slices";
      slice = (fun ~nr_runnable:_ ~task_weight:_ ~task_received_ms:_ -> Time_ns.ms 300);
    };
  let src =
    {|
guardrail a4-deprioritize-first {
  trigger: { TIMER(0, 50ms) }
  rule: { LOAD(sched_max_wait_ms) <= 100 }
  action: { DEPRIORITIZE("batch", 64) }
}
guardrail a4-kill-escalation {
  trigger: { TIMER(0, 100ms) }
  rule: { MIN(sched_max_wait_ms, 500ms) <= 100 || COUNT(sched_max_wait_ms, 500ms) < 10 }
  action: { REPORT("persistent starvation; killing batch", sched_max_wait_ms); KILL("batch") }
}
|}
  in
  ignore (Guardrails.Deployment.install_source_exn d src : Guardrails.Engine.handle list);
  for i = 1 to 12 do
    ignore
      (Gr_kernel.Sched.spawn sched
         ~name:(Printf.sprintf "batch-%d" i)
         ~cls:"batch" ~demand:(Time_ns.sec 5) ()
        : Gr_kernel.Sched.task)
  done;
  ignore
    (Gr_kernel.Sched.spawn sched ~name:"victim" ~cls:"interactive" ~demand:(Time_ns.sec 5) ()
      : Gr_kernel.Sched.task);
  Gr_kernel.Kernel.run_until kernel (Time_ns.sec 3);
  let killed =
    List.length
      (List.filter
         (fun (t : Gr_kernel.Sched.task) -> t.state = Gr_kernel.Sched.Killed)
         (Gr_kernel.Sched.tasks sched))
  in
  Printf.printf
    "A4 KILL (escalation): starvation persisted past the deprioritise step; %d batch tasks \
     killed; max wait now %.0fms\n"
    killed
    (Gr_kernel.Sched.max_wait_ms sched)

let run () =
  Common.section "Figure 1 (right) — action taxonomy A1-A4";
  a1_report ();
  a2_replace ();
  a3_retrain ();
  a4_deprioritize ();
  a4_kill_escalation ()
