(* Ablation E — compiler statistics over the shipped guardrail corpus.

   For every guardrail in specs/ plus a synthesized three-monitor
   policy profile, report the compiled size with and without the
   optimiser and the verifier's static cost estimate. This quantifies
   what §4.2's "limited types of actions ... simplifies compilation"
   buys concretely and documents the per-check budget of each shipped
   guardrail. *)

open Gr_util

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let spec_sources () =
  let dir = List.find_opt Sys.file_exists [ "specs"; "../specs"; "../../specs" ] in
  match dir with
  | None -> []
  | Some dir ->
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".grd")
    |> List.sort String.compare
    |> List.map (fun f -> (f, read_file (Filename.concat dir f)))

let synthesized_source () =
  let rng = Rng.create 99 in
  let training = Array.init 400 (fun _ -> Rng.gaussian rng ~mu:100. ~sigma:10.) in
  let p =
    Gr_props.Synthesis.profile ~policy:"linnos"
      ~inputs:[ Gr_props.Synthesis.input ~key:"io_latency_us" training ]
      ~reward_key:"io_fast" ~baseline_key:"shadow_fast" ~cost_key:"inference_ns" ()
  in
  ("(synthesized linnos profile)", Gr_props.Synthesis.synthesize p)

let row (origin, src) =
  match Gr_dsl.Parser.parse src with
  | Error _ -> ()
  | Ok spec ->
    List.iter
      (fun g ->
        let unopt = Gr_compiler.Lower.guardrail g in
        let opt = Gr_compiler.Opt.optimize_monitor unopt in
        match (Gr_compiler.Verify.verify unopt, Gr_compiler.Verify.verify opt) with
        | Ok su, Ok so ->
          Printf.printf "%-34s %-30s %8d %8d %10.0f %9.0f\n" origin g.Gr_dsl.Ast.name
            su.total_insts so.total_insts su.est_cost_ns so.est_cost_ns
        | _ -> Printf.printf "%-34s %-30s (verifier rejected)\n" origin g.Gr_dsl.Ast.name)
      spec

let run () =
  Common.section "Ablation E — compiler statistics over the guardrail corpus";
  Printf.printf "%-34s %-30s %8s %8s %10s %9s\n" "source" "guardrail" "insts" "insts'"
    "cost(ns)" "cost'(ns)";
  Printf.printf "%-34s %-30s %8s %8s %10s %9s\n" "" "" "(raw)" "(opt)" "(raw)" "(opt)";
  List.iter row (spec_sources ());
  row (synthesized_source ())
