(* Execution tiers — what does one monitor check cost on each engine?

   The paper's eBPF story compiles monitors to native code; our answer
   is the closure template JIT (Gr_runtime.Jit) over the
   register/superinstruction VM (Vm.compile) over the reference
   tree-walking interpreter (Vm.run). This experiment measures host
   ns/check for the three tiers on three monitor shapes:

   - listing2: the Figure 2 guardrail's rule, LOAD(k) <= 0.05 —
     3 instructions, the smallest real monitor we ship;
   - fig2_linear_273: a 68-feature linear model over the block
     layer's feature keys, compiled to exactly 273 instructions — the
     per-check instruction volume the BENCH_scale rows report for the
     fig2 scale monitor, as one rule (the shape a learned-policy
     distillation guardrail takes);
   - scale_avg: Ablation F's AVG(key, 1s) <= 1000 with a registered
     streaming demand — aggregate-dominated, the store does the work.

   Every executor is checked for bit-identical results before any
   timing (the cross-tier differential fuzzer proves this in general;
   here it guards the measurement itself). ns/check is the best of
   [rounds] wall-clock runs divided by checks, with [monitors]
   executors round-robined per iteration to model a fleet of
   installed monitors sharing a store. *)

module Vm = Guardrails.Vm
module Jit = Guardrails.Jit
module Store = Guardrails.Store

let rounds = 3

(* 68 weighted features + 67 adds + threshold compare = 273 IR
   instructions after optimization (each weight is distinct, so CSE
   keeps every term). *)
let n_features = 68

let linear_rule_source =
  let terms =
    List.init n_features (fun i -> Printf.sprintf "%.4f * LOAD(feat_%d)" (0.01 +. (0.013 *. float_of_int i)) i)
  in
  String.concat " + " terms ^ " <= 1000"

let monitor_source ~name ~rule =
  Printf.sprintf
    {|guardrail %s { trigger: { TIMER(0, 100ms) } rule: { %s } action: { REPORT("over") } }|}
    name rule

type shape = {
  sh_name : string;
  sh_rule : string;
  sh_keys : string list;
  sh_agg : bool;  (* register the AVG demand and warm it up *)
}

let shapes =
  [
    { sh_name = "listing2"; sh_rule = "LOAD(false_submit_rate) <= 0.05";
      sh_keys = [ "false_submit_rate" ]; sh_agg = false };
    { sh_name = "fig2_linear_273"; sh_rule = linear_rule_source;
      sh_keys = List.init n_features (Printf.sprintf "feat_%d"); sh_agg = false };
    { sh_name = "scale_avg"; sh_rule = "AVG(key_0, 1s) <= 1000";
      sh_keys = [ "key_0" ]; sh_agg = true };
  ]

(* The 273-instruction rule exceeds the default install-time verifier
   limits (64 slots, 256 registers); the bench raises them — it
   measures executors on the compiled IR, it never installs the
   monitor into an engine. *)
let bench_limits =
  { Guardrails.Verify.default_limits with max_regs = 512; max_slots = 128 }

let compile_rule shape =
  match
    Guardrails.Compile.source ~limits:bench_limits
      (monitor_source ~name:shape.sh_name ~rule:shape.sh_rule)
  with
  | Ok [ m ] -> m
  | Ok _ -> failwith "tiers: expected exactly one monitor"
  | Error e -> failwith (Format.asprintf "tiers: %a" Guardrails.Compile.pp_error e)

(* A standalone store at a fixed clock: 200 in-window samples per key
   (the demand path expires nothing at a constant [now], so every
   tier sees the same scanned counts — checked below). *)
let make_store shape =
  let now = ref 0 in
  let store = Store.create ~clock:(fun () -> !now) ~capacity_per_key:4096 () in
  List.iteri
    (fun ki key ->
      for i = 0 to 199 do
        now := i * 1_000_000;
        Store.save store key (float_of_int (((i * 7) + ki) mod 900))
      done)
    shape.sh_keys;
  now := 200_000_000;
  if shape.sh_agg then begin
    List.iter
      (fun key -> Store.register_demand store ~key ~fn:Gr_dsl.Ast.Avg ~window_ns:1e9 ~param:0.)
      shape.sh_keys;
    (* drain the registration's first expiry so measured checks are
       the steady state *)
    List.iter
      (fun key ->
        ignore (Store.aggregate store ~key ~fn:Gr_dsl.Ast.Avg ~window_ns:1e9 ~param:0. : float))
      shape.sh_keys
  end;
  store

let build_exec ~tier ~store ~slots rule : unit -> Vm.result =
  match (tier : Vm.tier) with
  | Vm.Tree ->
    let static_cost_ns = Vm.static_cost_ns rule in
    fun () -> Vm.run ~static_cost_ns ~store ~slots rule
  | Vm.Reg ->
    let c = Vm.compile ~store ~slots rule in
    fun () -> Vm.run_compiled c
  | Vm.Jit -> (
    match Jit.compile ~store ~slots rule with
    | Some j -> fun () -> Jit.run j
    | None -> failwith "tiers: JIT declined a single-store program")

let assert_equivalent shape (results : (Vm.tier * Vm.result) list) =
  match results with
  | [] | [ _ ] -> ()
  | (_, r0) :: rest ->
    List.iter
      (fun ((t : Vm.tier), (r : Vm.result)) ->
        if
          Int64.bits_of_float r.value <> Int64.bits_of_float r0.value
          || r.insts_executed <> r0.insts_executed
          || r.samples_scanned <> r0.samples_scanned
          || Int64.bits_of_float r.est_cost_ns <> Int64.bits_of_float r0.est_cost_ns
        then
          failwith
            (Printf.sprintf "tiers: %s diverges on %s (value %.17g vs %.17g)" (Vm.tier_to_string t)
               shape.sh_name r.value r0.value))
      rest

let bench_ns ~iters execs =
  let m = Array.length execs in
  let best = ref infinity in
  for _ = 1 to rounds do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      for i = 0 to m - 1 do
        ignore ((Array.unsafe_get execs i) () : Vm.result)
      done
    done;
    let t = Unix.gettimeofday () -. t0 in
    if t < !best then best := t
  done;
  !best *. 1e9 /. float_of_int (iters * m)

type row = {
  r_monitor : string;
  r_insts : int;
  r_monitors : int;
  r_tier : Vm.tier;
  r_ns : float;
  r_speedup : float;  (* vs the tree tier at the same (monitor, count) *)
}

let run ~json =
  let monitor_counts = if !Common.smoke then [ 1; 8 ] else [ 1; 16; 64 ] in
  let rows = ref [] in
  List.iter
    (fun shape ->
      let m = compile_rule shape in
      let rule = m.Guardrails.Monitor.rule in
      let slots = m.Guardrails.Monitor.slots in
      let insts = Array.length rule.Guardrails.Ir.insts in
      if shape.sh_name = "fig2_linear_273" && insts <> 273 then
        failwith (Printf.sprintf "tiers: linear rule compiled to %d insts, wanted 273" insts);
      List.iter
        (fun count ->
          let store = make_store shape in
          (* independent executors share the store, like a fleet of
             installed monitors; each reg/jit instance owns its frame *)
          let per_tier =
            List.map
              (fun tier ->
                (tier, Array.init count (fun _ -> build_exec ~tier ~store ~slots rule)))
              Vm.all_tiers
          in
          assert_equivalent shape (List.map (fun (t, ex) -> (t, ex.(0) ())) per_tier);
          let base = if !Common.smoke then 20_000 else 200_000 in
          let iters = max 500 (base / (max 1 insts / 3 + 1) / count) in
          let timed = List.map (fun (t, ex) -> (t, bench_ns ~iters ex)) per_tier in
          let tree_ns = List.assoc Vm.Tree timed in
          List.iter
            (fun (tier, ns) ->
              rows :=
                {
                  r_monitor = shape.sh_name;
                  r_insts = insts;
                  r_monitors = count;
                  r_tier = tier;
                  r_ns = ns;
                  r_speedup = tree_ns /. ns;
                }
                :: !rows)
            timed)
        monitor_counts)
    shapes;
  let rows = List.rev !rows in
  if json then
    Common.print_json
      (Common.Json.Obj
         [
           ("experiment", Str "tiers");
           ("host_cores", Common.json_int Common.host_cores);
           ( "rows",
             Common.Json.Arr
               (List.map
                  (fun r ->
                    Common.Json.Obj
                      [
                        ("monitor", Str r.r_monitor);
                        ("insts", Common.json_int r.r_insts);
                        ("monitors", Common.json_int r.r_monitors);
                        ("tier", Str (Vm.tier_to_string r.r_tier));
                        ("ns_per_check", Common.json_num r.r_ns);
                        ("speedup_vs_tree", Common.json_num r.r_speedup);
                      ])
                  rows) );
         ])
  else begin
    Common.section "Execution tiers: ns/check by tier x monitor count";
    Printf.printf "%-18s %6s %9s %6s %12s %12s\n" "monitor" "insts" "monitors" "tier"
      "ns/check" "vs tree";
    List.iter
      (fun r ->
        Printf.printf "%-18s %6d %9d %6s %12.1f %11.2fx\n" r.r_monitor r.r_insts r.r_monitors
          (Vm.tier_to_string r.r_tier) r.r_ns r.r_speedup)
      rows;
    match
      List.find_opt (fun r -> r.r_monitor = "fig2_linear_273" && r.r_tier = Vm.Jit) rows
    with
    | Some r ->
      Printf.printf "\nJIT on the 273-instruction monitor: %.2fx over the tree VM %s\n"
        r.r_speedup
        (if r.r_speedup >= 10. then "(target >= 10x met)" else "(target >= 10x MISSED)")
    | None -> ()
  end
