(* Ablation G — what does watching cost?

   The observability plane's self-overhead in real host time, not the
   VM's estimated-ns currency. Two layers of measurement:

   - Batched per-op calibration: a hot loop per subsystem divides
     total wall time by iterations, so the timer cost is amortised
     instead of being charged to every ~10ns operation. Sinks are
     small bounded rings here — the deployment configuration — so the
     numbers are steady-state costs, not GC avalanches from holding
     hundreds of thousands of events live.
   - In-run Selfcost counters: the Figure 2 scenario traced with
     {!Guardrails.Selfcost} enabled, reporting exactly what `grc run
     --metrics` surfaces. Each op pays a timer pair here, so these
     are upper bounds; the calibration numbers are the honest per-op
     costs.

   The headline ratio is the causal-provenance tax: span allocation
   plus span/parent arg construction per emitted event, times the
   events a check path emits, plus the OpenMetrics exposition
   amortised over the checks it summarises — relative to the
   untraced check itself. Also measured: the disabled path, where an
   emission site on a disabled tracer is a single branch. *)

module Selfcost = Guardrails.Selfcost

let avg_source =
  {|guardrail obs_avg { trigger: { TIMER(0, 100ms) } rule: { AVG(lat, 1s) <= 1000 } action: { REPORT("over") } }|}

let iters () = if !Common.smoke then 50_000 else 500_000
let samples = 1000
let ring = 4096

(* Mean host ns per call, timer amortised over the whole loop; best
   of [rounds] batches so a GC slice or scheduler preemption in one
   batch doesn't pollute the estimate. Each batch starts from an
   empty minor heap so allocation cost is charged uniformly instead
   of depending on where the previous batch left the nursery. *)
let rounds = 5

let calibrate ?(warmup = 10_000) n f =
  for _ = 1 to warmup do
    f ()
  done;
  let best = ref infinity in
  for _ = 1 to rounds do
    Gc.minor ();
    let t0 = Selfcost.now_ns () in
    for _ = 1 to n do
      f ()
    done;
    best := Float.min !best ((Selfcost.now_ns () -. t0) /. float_of_int n)
  done;
  !best

(* A deployment with the AVG monitor installed and its window fed, so
   check_now exercises the real check path: incremental window
   aggregate, engine bookkeeping, metrics registry update, and — when
   tracing — provenance-tagged events into a bounded ring. *)
let make_checker ~tracing =
  let kernel = Gr_kernel.Kernel.create ~seed:11 in
  let d = Guardrails.Deployment.create ~kernel ~tracing ~trace_capacity:ring ~engine:!Common.engine () in
  let handle =
    match Guardrails.Deployment.install_source d avg_source with
    | Ok [ h ] -> h
    | _ -> failwith "obs: install failed"
  in
  for i = 1 to samples do
    Guardrails.Deployment.save d "lat" (float_of_int (i mod 97))
  done;
  (d, handle)

let run ~json =
  let n = iters () in
  (* Provenance bookkeeping in isolation: exactly what Tracer.tag
     adds to an event — a span allocation and the span/parent arg
     cells. opaque_identity keeps the allocation without adding a
     write barrier the real path doesn't pay. *)
  let cal_tracer =
    Guardrails.Trace.create
      ~clock:(fun () -> 0)
      ~capacity:ring ~overflow:Guardrails.Trace_sink.Overwrite_oldest ~enabled:true ()
  in
  (* Direct loop, not through [calibrate]: at ~5ns/op an indirect
     closure call and the lost inlining would be a measurable part of
     the result, and code-placement luck makes it bimodal from run to
     run. The first rounds also absorb the CPU frequency ramp, which
     the min discards. The loop does what Tracer.tag does per event
     at steady state: allocate a span id and cons its arg cell onto
     the memoized parent/node tail (the tail itself is rebuilt once
     per causal scope, amortized across the scope's events). *)
  let provenance_ns =
    let tail = [ ("parent", Guardrails.Trace_event.Int 1) ] in
    let best = ref infinity in
    for _ = 1 to 2 * rounds do
      Gc.minor ();
      let t0 = Selfcost.now_ns () in
      for _ = 1 to n do
        let s = Guardrails.Trace.fresh_span cal_tracer in
        ignore (Sys.opaque_identity (("span", Guardrails.Trace_event.Int s) :: tail))
      done;
      best := Float.min !best ((Selfcost.now_ns () -. t0) /. float_of_int n)
    done;
    !best
  in
  let emit_ns =
    calibrate n (fun () -> Guardrails.Trace.instant cal_tracer ~cat:"bench" "x")
  in
  let disabled_tracer = Guardrails.Trace.create ~clock:(fun () -> 0) ~capacity:16 () in
  let disabled_emit_ns =
    calibrate n (fun () -> Guardrails.Trace.instant disabled_tracer ~cat:"bench" "x")
  in
  let metrics = Guardrails.Metrics.create () in
  let mon = Guardrails.Metrics.monitor metrics "obs" in
  let metrics_record_ns =
    calibrate n (fun () ->
        Guardrails.Metrics.record_check mon ~cost_ns:123. ~insts:7 ~samples:3 ~violated:false)
  in
  (* The check path, untraced then traced, on the same monitor. *)
  let checks = n / 2 in
  let d0, h0 = make_checker ~tracing:false in
  let engine0 = Guardrails.Deployment.engine d0 in
  let check_ns =
    calibrate checks (fun () -> ignore (Guardrails.Engine.check_now engine0 h0 : bool))
  in
  let d1, h1 = make_checker ~tracing:true in
  let engine1 = Guardrails.Deployment.engine d1 in
  let sink1 = Guardrails.Trace.events (Guardrails.Deployment.tracer d1) in
  (* [Sink.emitted] counts every emit call, buffered or dropped. *)
  let before = Guardrails.Trace_sink.emitted sink1 in
  let traced_check_ns =
    calibrate checks (fun () -> ignore (Guardrails.Engine.check_now engine1 h1 : bool))
  in
  let events_per_check =
    float_of_int (Guardrails.Trace_sink.emitted sink1 - before)
    /. float_of_int ((rounds * checks) + 10_000)
  in
  (* OpenMetrics exposition, amortised over the checks it summarises
     (rendering happens per scrape, not per check). *)
  let exposition = ref "" in
  let render_ns =
    calibrate ~warmup:100 1_000 (fun () ->
        exposition := Guardrails.Trace_export.openmetrics (Guardrails.Deployment.tracer d1))
  in
  let recorded_checks = Guardrails.Metrics.((monitor (Guardrails.Deployment.metrics d1) "obs_avg").checks) in
  let render_per_check_ns = render_ns /. float_of_int (max 1 recorded_checks) in
  (* Fleet-tier merge: AVG over a plain key sharded across 4 node
     stores, the per-read cost the Store_merge counter tracks. *)
  let fleet = Guardrails.Fleet.create ~nodes:4 ~seed:11 ~engine:!Common.engine () in
  Array.iter
    (fun node ->
      let store = Guardrails.Node.store node in
      for i = 1 to samples / 4 do
        Guardrails.Store.save store "lat" (float_of_int (i mod 97))
      done)
    (Guardrails.Fleet.nodes fleet);
  let fleet_store = Guardrails.Fleet.store fleet in
  let store_merge_ns =
    calibrate ~warmup:1_000 (n / 50) (fun () ->
        ignore
          (Guardrails.Store.aggregate fleet_store ~key:"lat" ~fn:Guardrails.Ast.Avg
             ~window_ns:1e9 ~param:0.
            : float))
  in
  let provenance_per_check = provenance_ns *. events_per_check in
  let overhead_ratio = (provenance_per_check +. render_per_check_ns) /. check_ns in
  let trace_ratio = Float.max 0. (traced_check_ns -. check_ns) /. check_ns in
  (* In-run counters: the Figure 2 run with tracing and Selfcost on,
     exactly what `grc run --metrics` exposes. *)
  Selfcost.set_enabled true;
  Selfcost.reset ();
  let rig = Common.make_fig2_rig ~tracing:true ~trace_capacity:(1 lsl 20) () in
  ignore
    (Guardrails.Deployment.install_source_exn rig.Common.deployment Common.listing2_source
      : Guardrails.Engine.handle list);
  Gr_kernel.Kernel.run_until rig.Common.kernel Common.run_until;
  let selfcost =
    List.map (fun s -> (Selfcost.name s, Selfcost.ops s, Selfcost.host_ns s)) Selfcost.all
  in
  Selfcost.set_enabled false;
  Selfcost.reset ();
  if json then
    let open Common.Json in
    Common.print_json
      (Obj
         [
           ("experiment", Str "obs");
           ("iters", Common.json_int n);
           ("check_ns", Common.json_num check_ns);
           ("traced_check_ns", Common.json_num traced_check_ns);
           ("trace_overhead_ratio", Common.json_num trace_ratio);
           ("events_per_check", Common.json_num events_per_check);
           ("emit_ns", Common.json_num emit_ns);
           ("provenance_ns", Common.json_num provenance_ns);
           ("provenance_per_check_ns", Common.json_num provenance_per_check);
           ("metrics_record_ns", Common.json_num metrics_record_ns);
           ("openmetrics_render_ns", Common.json_num render_ns);
           ("openmetrics_render_per_check_ns", Common.json_num render_per_check_ns);
           ("store_merge_ns", Common.json_num store_merge_ns);
           ("disabled_emit_ns", Common.json_num disabled_emit_ns);
           ("overhead_ratio", Common.json_num overhead_ratio);
           ( "selfcost_fig2",
             Obj
               (List.map
                  (fun (name, ops, host_ns) ->
                    ( name,
                      Obj
                        [
                          ("ops", Common.json_int ops);
                          ("host_ns", Common.json_num host_ns);
                          ( "ns_per_op",
                            Common.json_num
                              (if ops = 0 then 0. else host_ns /. float_of_int ops) );
                        ] ))
                  selfcost) );
         ])
  else begin
    Common.section "Ablation G — observability self-overhead";
    Printf.printf "  per-op calibration (batched over %d iterations):\n" n;
    Printf.printf "    %-36s %10.1f ns\n" "rule check (untraced)" check_ns;
    Printf.printf "    %-36s %10.1f ns\n" "rule check (traced, bounded ring)" traced_check_ns;
    Printf.printf "    %-36s %10.1f ns\n" "trace emit (tagged instant)" emit_ns;
    Printf.printf "    %-36s %10.2f ns\n" "provenance bookkeeping / event" provenance_ns;
    Printf.printf "    %-36s %10.1f ns\n" "metrics record_check" metrics_record_ns;
    Printf.printf "    %-36s %10.1f ns\n" "OpenMetrics render / scrape" render_ns;
    Printf.printf "    %-36s %10.1f ns\n" "fleet store merge (4 nodes)" store_merge_ns;
    Printf.printf "    %-36s %10.1f ns\n" "emit on disabled tracer (1 branch)" disabled_emit_ns;
    Printf.printf "  events per traced check:               %8.2f\n" events_per_check;
    Printf.printf "  provenance+metrics vs check cost:      %8.2f%%\n" (100. *. overhead_ratio);
    Printf.printf "  tracing on vs off, whole check path:   %8.2f%%\n" (100. *. trace_ratio);
    Printf.printf "  fig2 in-run Selfcost counters (include one timer pair per op):\n";
    List.iter
      (fun (name, ops, host_ns) ->
        Printf.printf "    %-16s %10d ops %14.0f ns total %8.1f ns/op\n" name ops host_ns
          (if ops = 0 then 0. else host_ns /. float_of_int ops))
      selfcost;
    ignore !exposition
  end
