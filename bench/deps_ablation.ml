(* Ablation B — dependency-triggered checking (§6 future work).

   The paper suggests improving on periodic TIMER checks by "tracking
   a minimal set of data dependencies, enabling such properties to be
   automatically checked only when relevant system state changes".
   The compiler computes each monitor's read set; the runtime can arm
   an ON_CHANGE trigger per read key instead of a timer.

   We run Listing 2's property both ways on the Figure 2 scenario and
   compare: number of rule evaluations, estimated checking work, and
   detection delay after the drift. Dependency triggering checks
   exactly when the monitored rate is recomputed, so it detects as
   fast as the data allows with no wasted polls between updates. *)

open Gr_util

let source_with_trigger trigger =
  Printf.sprintf
    {|guardrail dep-vs-timer { trigger: { %s } rule: { LOAD(false_submit_rate) <= 0.05 } action: { REPORT("over"); SAVE(ml_enabled, false) } }|}
    trigger

let arm ~name ~trigger =
  let rig = Common.make_fig2_rig ~seed:7 () in
  let handles =
    Guardrails.Deployment.install_source_exn rig.deployment (source_with_trigger trigger)
  in
  Gr_kernel.Kernel.run_until rig.kernel Common.run_until;
  let stats =
    Guardrails.Engine.Stats.get (Guardrails.Deployment.engine rig.deployment) (List.hd handles)
  in
  let detection =
    match Common.first_violation rig.deployment with
    | Some at -> Format.asprintf "%a" Time_ns.pp (Time_ns.diff at Common.aging_at)
    | None -> "never"
  in
  Printf.printf "  %-24s %-10d %-14s %12.0f ns\n" name stats.checks detection stats.overhead_ns

let run () =
  Common.section "Ablation B — TIMER polling vs dependency-triggered checking";
  (* Show the compiler's read/write set analysis first. *)
  let monitors = Guardrails.Compile.source_exn (source_with_trigger "TIMER(0, 1s)") in
  List.iter
    (fun m ->
      Printf.printf "monitor %s: reads {%s} writes {%s} -> auto triggers: %s\n"
        m.Guardrails.Monitor.name
        (String.concat ", " (Guardrails.Monitor.reads m))
        (String.concat ", " (Guardrails.Monitor.writes m))
        (String.concat ", "
           (List.map
              (function
                | Guardrails.Monitor.On_change k -> "ON_CHANGE(" ^ k ^ ")"
                | _ -> "?")
              (Guardrails.Deps.auto_triggers m))))
    monitors;
  print_endline "";
  Printf.printf "  %-24s %-10s %-14s %-14s\n" "trigger" "checks" "detection" "est. check cost";
  arm ~name:"TIMER(1s) [Listing 2]" ~trigger:"TIMER(0, 1s)";
  arm ~name:"TIMER(100ms)" ~trigger:"TIMER(0, 100ms)";
  arm ~name:"TIMER(10ms)" ~trigger:"TIMER(0, 10ms)";
  arm ~name:"ON_CHANGE(rate key)" ~trigger:"ON_CHANGE(false_submit_rate)"
