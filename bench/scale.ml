(* Ablation F — how many guardrails can a kernel afford?

   §3.3's incremental-deployment story implies fleets of monitors.
   This sweep installs N copies of a Listing 2-sized TIMER monitor
   (each over its own keys, 100ms interval) against the Figure 2
   workload and reports total checks, the engine's estimated checking
   work, and the host wall-clock per simulated second — the knee, if
   any, is where monitor dispatch would start to matter. *)

open Gr_util

let monitor_source i =
  Printf.sprintf
    {|guardrail scale_%d { trigger: { TIMER(0, 100ms) } rule: { AVG(key_%d, 1s) <= 1000 } action: { REPORT("over") } }|}
    i i

let run_with ~monitors =
  let rig = Common.make_fig2_rig ~seed:7 () in
  (* Each monitor watches its own key, fed by the shared I/O stream. *)
  for i = 0 to monitors - 1 do
    Guardrails.Deployment.forward_hook_arg rig.deployment ~hook:"blk:io_complete"
      ~arg:"latency_us"
      ~key:(Printf.sprintf "key_%d" i)
      ();
    ignore
      (Guardrails.Deployment.install_source_exn rig.deployment (monitor_source i)
        : Guardrails.Engine.handle list)
  done;
  let wall_start = Unix.gettimeofday () in
  Gr_kernel.Kernel.run_until rig.kernel Common.run_until;
  let wall = Unix.gettimeofday () -. wall_start in
  let engine = Guardrails.Deployment.engine rig.deployment in
  ( Guardrails.Engine.Stats.total_checks engine,
    Guardrails.Engine.Stats.total_overhead_ns engine,
    wall,
    Common.compact_monitors_json rig.deployment )

let monitor_counts () = if !Common.smoke then [ 1; 10 ] else [ 1; 10; 50; 200; 1000 ]

(* Fleet sweep: the same Listing 2-sized monitors, but fleet-wide —
   installed on the control engine, each aggregating the merged view
   of every node's shard of its key. Each node feeds all keys at a
   fixed cadence, so checking work grows with monitors while the
   per-check merge fans out over nodes. *)

let fleet_run_until = Time_ns.sec 3

let run_fleet_with ~nodes ~monitors ~domains =
  let fleet = Guardrails.Fleet.create ~nodes ~seed:7 ~domains ~engine:!Common.engine () in
  Array.iter
    (fun node ->
      let rng = (Guardrails.Deployment.kernel node).Gr_kernel.Kernel.rng in
      for i = 0 to monitors - 1 do
        Guardrails.Deployment.derive_periodic node
          ~key:(Printf.sprintf "key_%d" i)
          ~every:(Time_ns.ms 10)
          (fun () -> Rng.float rng 100.)
      done)
    (Guardrails.Fleet.nodes fleet);
  for i = 0 to monitors - 1 do
    ignore
      (Guardrails.Fleet.install_source_exn fleet (monitor_source i)
        : Guardrails.Engine.handle list)
  done;
  let wall_start = Unix.gettimeofday () in
  Guardrails.Fleet.run_until fleet fleet_run_until;
  let wall = Unix.gettimeofday () -. wall_start in
  let engine = Guardrails.Fleet.engine fleet in
  ( Guardrails.Engine.Stats.total_checks engine,
    Guardrails.Engine.Stats.total_overhead_ns engine,
    wall,
    Common.compact_monitors_json (Guardrails.Fleet.control fleet) )

(* The sweep is (nodes, monitors, domains) triples: the historical
   sequential grid, plus a wide-fleet parallel grid (up to 64 nodes)
   that exercises the epoch-barrier runtime at every domain count.
   Speedup on a multi-core host comes from the node phases running
   concurrently; Common.host_cores stamps the ceiling. *)
let fleet_counts () =
  if !Common.smoke then [ (1, 1, 1); (2, 10, 1); (2, 10, 2) ]
  else
    let sequential =
      List.concat_map
        (fun n -> List.map (fun m -> (n, m, 1)) [ 1; 10; 50 ])
        [ 1; 2; 4; 8 ]
    in
    let parallel =
      List.concat_map
        (fun (n, m) -> List.map (fun d -> (n, m, d)) [ 1; 2; 4; 8 ])
        [ (16, 10); (64, 10); (64, 50) ]
    in
    sequential @ parallel

let run ~json =
  if not json then begin
    Common.section "Ablation F — monitor-count scalability";
    Printf.printf "  %-10s %-12s %-18s %s\n" "monitors" "checks" "est. check work" "host s/sim s"
  end;
  let rows =
    List.map
      (fun n ->
        let checks, overhead, wall, monitors = run_with ~monitors:n in
        let per_sim_s = wall /. Time_ns.to_float_sec Common.run_until in
        if not json then
          Printf.printf "  %-10d %-12d %12.0f ns    %8.3f\n" n checks overhead per_sim_s;
        (n, checks, overhead, per_sim_s, monitors))
      (monitor_counts ())
  in
  if not json then begin
    Common.section
      (Printf.sprintf "Ablation F' — fleet scalability (nodes x monitors x domains, %d core(s))"
         Common.host_cores);
    Printf.printf "  %-7s %-10s %-8s %-12s %-18s %-14s %s\n" "nodes" "monitors" "domains"
      "checks" "est. check work" "host s/sim s" "wall speedup"
  end;
  let fleet_rows =
    List.map
      (fun (nodes, n, domains) ->
        let checks, overhead, wall, monitors = run_fleet_with ~nodes ~monitors:n ~domains in
        let per_sim_s = wall /. Time_ns.to_float_sec fleet_run_until in
        (nodes, n, domains, checks, overhead, wall, per_sim_s, monitors))
      (fleet_counts ())
  in
  (* wall_speedup: the same (nodes, monitors) point's --domains 1 wall
     over this row's — 1.0 for the baseline itself, NaN (JSON null)
     when no baseline ran. *)
  let speedup_of (nodes, n, _, _, _, wall, _, _) =
    match
      List.find_opt (fun (n', m', d', _, _, _, _, _) -> n' = nodes && m' = n && d' = 1)
        fleet_rows
    with
    | Some (_, _, _, _, _, base_wall, _, _) when wall > 0. -> base_wall /. wall
    | _ -> Float.nan
  in
  if not json then
    List.iter
      (fun ((nodes, n, domains, checks, overhead, _, per_sim_s, _) as row) ->
        Printf.printf "  %-7d %-10d %-8d %-12d %12.0f ns    %10.3f    %8.2fx\n" nodes n
          domains checks overhead per_sim_s (speedup_of row))
      fleet_rows;
  if json then
    let open Common.Json in
    Common.print_json
      (Obj
         [
           ("experiment", Str "scale");
           ("host_cores", Common.json_int Common.host_cores);
           ( "rows",
             Arr
               (List.map
                  (fun (n, checks, overhead, per_sim_s, monitors) ->
                    Obj
                      [
                        ("monitors", Common.json_int n);
                        ("checks", Common.json_int checks);
                        ("est_check_work_ns", Common.json_num overhead);
                        ("host_sec_per_sim_sec", Common.json_num per_sim_s);
                        ("monitor_metrics", monitors);
                      ])
                  rows
                @ List.map
                    (fun ((nodes, n, domains, checks, overhead, _, per_sim_s, monitors) as
                          row) ->
                      Obj
                        [
                          ("nodes", Common.json_int nodes);
                          ("monitors", Common.json_int n);
                          ("domains", Common.json_int domains);
                          ("checks", Common.json_int checks);
                          ("est_check_work_ns", Common.json_num overhead);
                          ("host_sec_per_sim_sec", Common.json_num per_sim_s);
                          ("wall_speedup", Common.json_num (speedup_of row));
                          ("monitor_metrics", monitors);
                        ])
                    fleet_rows) );
         ])
