(* Ablation D — incremental deployment (§3.3).

   "A key feature of guardrails is that they allow incremental
   deployment: more guardrails can be incrementally added to check
   for more properties."

   One kernel hosts four misbehaving learned policies at once
   (stale LinnOS classifier, drifted quota advisor, noise-sensitive
   congestion controller, wild slice policy). We deploy guardrails
   one at a time and report, after each addition, how many of the
   four live faults are covered by at least one firing monitor and
   what the accumulated checking work costs. Coverage grows step by
   step; checking cost stays in microseconds of estimated work per
   simulated second. *)

open Gr_util
module Props = Gr_props.Props

type rig = {
  kernel : Gr_kernel.Kernel.t;
  d : Guardrails.Deployment.t;
}

let build_faulty_world () =
  let kernel = Gr_kernel.Kernel.create ~seed:33 in
  let d = Guardrails.Deployment.create ~kernel ~engine:!Common.engine () in
  (* Fault 1: stale LinnOS classifier (devices born aged, model
     trained on young twins). *)
  let young =
    Array.init 2 (fun i ->
        Gr_kernel.Ssd.create ~rng:kernel.rng ~profile:Gr_kernel.Ssd.young_profile ~id:(10 + i))
  in
  let devices =
    Array.init 2 (fun i ->
        Gr_kernel.Ssd.create ~rng:kernel.rng ~profile:Gr_kernel.Ssd.aged_profile ~id:i)
  in
  let blk = Gr_kernel.Blk.create ~engine:kernel.engine ~hooks:kernel.hooks ~devices () in
  let model = Gr_policy.Linnos.train ~rng:kernel.rng ~devices:young () in
  Gr_kernel.Policy_slot.install (Gr_kernel.Blk.slot blk) ~name:"linnos"
    (Gr_policy.Linnos.policy model);
  Guardrails.Deployment.forward_hook_arg d ~hook:"blk:io_complete" ~arg:"false_submit" ();
  Guardrails.Deployment.derive_window_avg d ~src:"false_submit" ~dst:"false_submit_rate"
    ~window:(Time_ns.sec 1) ~every:(Time_ns.ms 100);
  Guardrails.Deployment.bind_control_key d ~key:"ml_enabled" (fun v ->
      Gr_policy.Linnos.set_enabled model (v <> 0.));
  ignore
    (Gr_workload.Io_driver.start ~engine:kernel.engine ~rng:kernel.rng ~blk
       ~arrival:(Gr_workload.Arrival.poisson ~rate_per_sec:1000.)
       ~n_devices:2 ~until:(Time_ns.sec 30) ()
      : Gr_workload.Io_driver.t);
  (* Fault 2: drifted quota advisor. *)
  let mm = Gr_kernel.Mm.create ~engine:kernel.engine ~hooks:kernel.hooks ~fast_capacity:256 () in
  let advisor = Gr_policy.Quota_advisor.train ~rng:kernel.rng ~capacity:256 () in
  Gr_policy.Quota_advisor.inject_drift advisor ~scale:4.;
  Guardrails.Deployment.forward_hook_arg d ~hook:"mm:quota" ~arg:"requested" ~key:"quota_req" ();
  let advisor_rng = Rng.fork kernel.rng in
  ignore
    (Gr_sim.Engine.every kernel.engine ~interval:(Time_ns.ms 200) (fun _ ->
         let q =
           Gr_policy.Quota_advisor.propose advisor ~miss_rate:(Rng.float advisor_rng 1.)
             ~occupancy:(Rng.float advisor_rng 1.)
         in
         ignore (Gr_kernel.Mm.advise_quota mm ~requested:q : [ `Applied of int | `Rejected ]))
      : Gr_sim.Engine.handle);
  (* Fault 3: noise-sensitive congestion controller. *)
  let controller = Gr_policy.Cc_controller.train ~rng:kernel.rng () in
  Gr_policy.Cc_controller.inject_sensitivity controller ~scale:100.;
  Props.P2_robustness.instrument_cc d controller ~rng:kernel.rng ~key:"cc_sensitivity"
    ~every:(Time_ns.ms 100);
  (* Fault 4: wild time-slice policy starving interactive tasks. *)
  let sched = Gr_kernel.Sched.create ~engine:kernel.engine ~hooks:kernel.hooks () in
  Guardrails.Deployment.wire_scheduler d sched;
  Gr_kernel.Policy_slot.install (Gr_kernel.Sched.slot sched) ~name:"wild"
    (Gr_policy.Inject.wild_slices ~rng:kernel.rng ~max_ms:400);
  Gr_workload.Taskset.run ~engine:kernel.engine ~rng:kernel.rng ~sched
    ~specs:
      [ Gr_workload.Taskset.interactive ~rate_per_sec:50.;
        Gr_workload.Taskset.batch ~rate_per_sec:0.3 ]
    ~until:(Time_ns.sec 30);
  { kernel; d }

let guardrail_steps =
  [
    ( "low-false-submit (Listing 2)",
      "stale classifier",
      {|guardrail low-false-submit { trigger: { TIMER(0, 1s) } rule: { LOAD(false_submit_rate) <= 0.05 } action: { REPORT("false submits") } }|}
    );
    ( "p3-quota-bounds",
      "drifted advisor",
      Props.P3_output_bounds.source ~name:"p3-quota-bounds" ~hook:"mm:quota" ~key:"quota_req"
        ~lo:0. ~hi:256.
        ~actions:[ {|REPORT("illegal quota", quota_req)|} ]
        () );
    ( "p2-cc-robustness",
      "unstable controller",
      Props.P2_robustness.source ~name:"p2-cc-robustness" ~sensitivity_key:"cc_sensitivity"
        ~bound:10. ~window:(Time_ns.sec 1) ~check_every:(Time_ns.ms 200)
        ~actions:[ {|REPORT("noise sensitive", cc_sensitivity)|} ]
        () );
    ( "p6-no-starvation",
      "wild slice policy",
      Props.P6_fairness.source ~name:"p6-no-starvation" ~max_wait_ms:100. ~min_jain:0.1
        ~check_every:(Time_ns.ms 100)
        ~actions:[ {|REPORT("starvation", sched_max_wait_ms)|} ]
        () );
  ]

let run () =
  Common.section "Ablation D — incremental guardrail deployment";
  let rig = build_faulty_world () in
  let installed = ref [] in
  Printf.printf "%-32s %-24s %-10s %-12s %s\n" "guardrail added" "covers fault" "firing"
    "total checks" "est. total cost";
  List.iter
    (fun (name, fault, src) ->
      let handles = Guardrails.Deployment.install_source_exn rig.d src in
      installed := !installed @ handles;
      (* Run one more simulated second with the enlarged set. *)
      Gr_kernel.Kernel.run_until rig.kernel
        (Time_ns.add (Gr_kernel.Kernel.now rig.kernel) (Time_ns.sec 1));
      let engine = Guardrails.Deployment.engine rig.d in
      let firing =
        List.exists
          (fun h ->
            Guardrails.Engine.monitor_name h = name
            && (Guardrails.Engine.Stats.get engine h).violations > 0)
          !installed
      in
      Printf.printf "%-32s %-24s %-10s %-12d %10.0f ns\n" name fault
        (if firing then "YES" else "not yet")
        (Guardrails.Engine.Stats.total_checks engine)
        (Guardrails.Engine.Stats.total_overhead_ns engine))
    guardrail_steps;
  let covered =
    List.length
      (List.filter
         (fun h ->
           (Guardrails.Engine.Stats.get (Guardrails.Deployment.engine rig.d) h).violations > 0)
         !installed)
  in
  Printf.printf "\nfinal coverage: %d/4 injected faults detected by their guardrails\n" covered;
  print_endline "";
  print_endline "operations report (Engine.pp_report):";
  Format.printf "%a" Gr_runtime.Engine.pp_report (Guardrails.Deployment.engine rig.d)
