(* Chaos soak: randomized deployments x fault plans with invariants
   checked after every sim event (gr_fault). The bench entry runs a
   wider sweep than [grc soak --smoke] and reports aggregate counts;
   any failure prints its shrunk repro command and fails the run. *)

open Gr_util
module Soak = Gr_fault.Soak

let run ~json =
  let seeds, duration =
    if !Common.smoke then (List.init 7 (fun i -> i + 1), Time_ns.of_float_sec 0.5)
    else (List.init 25 (fun i -> i + 1), Time_ns.of_float_sec 2.0)
  in
  let log line = if not json then Printf.printf "  %s\n%!" line in
  if not json then Common.section "chaos soak: fault injection vs guardrail invariants";
  let r = Soak.soak ~log ~scenarios:Soak.scenario_names ~seeds ~duration () in
  if json then
    Common.print_json
      (Common.Json.Obj
         [
           ("experiment", Str "soak");
           ("runs", Common.json_int r.Soak.runs);
           ("passed", Common.json_int r.Soak.passed);
           ("failed", Common.json_int (List.length r.Soak.failures));
           ("total_events", Common.json_int r.Soak.total_events);
           ("total_faults", Common.json_int r.Soak.total_faults);
           ( "failures",
             Common.Json.Arr
               (List.map
                  (fun (f : Soak.failure) ->
                    Common.Json.Obj
                      [
                        ("scenario", Str f.Soak.scenario);
                        ("seed", Common.json_int f.Soak.seed);
                        ("repro", Str (Soak.repro_command f));
                        ( "problems",
                          Common.Json.Arr
                            (List.map (fun p -> Common.Json.Str p) f.Soak.problems) );
                      ])
                  r.Soak.failures) );
         ])
  else Format.printf "%a" Soak.pp_report r;
  if r.Soak.failures <> [] then exit 1
