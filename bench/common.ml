(* Shared scenario builders for the benchmark harness.

   The central rig reproduces the paper's §5 setting: a flash-RAID
   block layer under a read workload, a LinnOS-style classifier
   trained on the healthy device regime, and a device aging event
   that makes the model stale mid-run. *)

open Gr_util

let listing2_source =
  {|
guardrail low-false-submit {
  trigger: {
    TIMER(start_time, 1e9) // Periodically check every 1s.
  },
  rule: {
    LOAD(false_submit_rate) <= 0.05
  },
  action: {
    REPORT("false-submit rate exceeded 5%", false_submit_rate)
    SAVE(ml_enabled, false)
  }
}
|}

type fig2_rig = {
  kernel : Gr_kernel.Kernel.t;
  devices : Gr_kernel.Ssd.t array;
  blk : Gr_kernel.Blk.t;
  model : Gr_policy.Linnos.t;
  deployment : Guardrails.Deployment.t;
  driver : Gr_workload.Io_driver.t;
}

let n_devices = 4
let io_rate = 1500.
let aging_at = Time_ns.sec 2
let workload_until = Time_ns.sec 8
let run_until = Time_ns.sec 9

(* --engine pins the monitor execution tier for every deployment the
   experiments build (default: the closure template JIT). Tiers are
   bit-identical in results and accounting, so figures must not move
   with this knob — only the tiers experiment's wall-clock does. *)
let engine = ref Guardrails.Vm.Jit

(* [rate_window]/[rate_every] control the false_submit_rate derivation
   the Listing 2 guardrail consumes. *)
let make_fig2_rig ?(seed = 7) ?(rate_window = Time_ns.sec 2) ?(rate_every = Time_ns.ms 100)
    ?(with_model = true) ?(tracing = false) ?trace_capacity () =
  let kernel = Gr_kernel.Kernel.create ~seed in
  let devices =
    Array.init n_devices (fun i ->
        Gr_kernel.Ssd.create ~rng:kernel.rng ~profile:Gr_kernel.Ssd.young_profile ~id:i)
  in
  let blk = Gr_kernel.Blk.create ~engine:kernel.engine ~hooks:kernel.hooks ~devices () in
  let model = Gr_policy.Linnos.train ~rng:kernel.rng ~devices () in
  if with_model then
    Gr_kernel.Policy_slot.install (Gr_kernel.Blk.slot blk) ~name:"linnos"
      (Gr_policy.Linnos.policy model);
  let deployment = Guardrails.Deployment.create ~kernel ~tracing ?trace_capacity ~engine:!engine () in
  Guardrails.Deployment.forward_hook_arg deployment ~hook:"blk:io_complete" ~arg:"false_submit" ();
  Guardrails.Deployment.derive_window_avg deployment ~src:"false_submit" ~dst:"false_submit_rate"
    ~window:rate_window ~every:rate_every;
  Guardrails.Deployment.save deployment "ml_enabled" 1.;
  Guardrails.Deployment.bind_control_key deployment ~key:"ml_enabled" (fun v ->
      Gr_policy.Linnos.set_enabled model (v <> 0.));
  Gr_kernel.Kernel.register_policy kernel ~name:"linnos"
    ~replace:(fun () -> Gr_policy.Linnos.set_enabled model false)
    ~restore:(fun () -> Gr_policy.Linnos.set_enabled model true)
    ~retrain:(fun () -> Gr_policy.Linnos.retrain model)
    ();
  (* Age every device at [aging_at]: the GC regime shifts and the
     trained classifier is stale from here on. *)
  ignore
    (Gr_sim.Engine.schedule_at kernel.engine aging_at (fun _ ->
         Array.iter
           (fun dev -> Gr_kernel.Ssd.set_profile dev Gr_kernel.Ssd.aged_profile)
           devices)
      : Gr_sim.Engine.handle);
  let driver =
    Gr_workload.Io_driver.start ~engine:kernel.engine ~rng:kernel.rng ~blk
      ~arrival:(Gr_workload.Arrival.poisson ~rate_per_sec:io_rate)
      ~n_devices ~zipf_s:0.5 ~until:workload_until ()
  in
  { kernel; devices; blk; model; deployment; driver }

(* Latency series bucketed into [bucket] windows, as (time_s, mean_us)
   rows — the paper's Figure 2 y-axis is a moving average of I/O
   latencies. *)
let latency_series ~bucket samples =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (s : Gr_workload.Io_driver.sample) ->
      let b = s.at / bucket in
      let sum, n = Option.value ~default:(0., 0) (Hashtbl.find_opt table b) in
      Hashtbl.replace table b (sum +. s.latency_us, n + 1))
    samples;
  Hashtbl.fold (fun b (sum, n) acc -> (b, sum /. float_of_int (max 1 n)) :: acc) table []
  |> List.sort compare
  |> List.map (fun (b, mean) -> (Time_ns.to_float_sec (b * bucket), mean))

let mean_latency_between ~lo ~hi samples =
  let xs =
    List.filter_map
      (fun (s : Gr_workload.Io_driver.sample) ->
        if s.at >= lo && s.at < hi then Some s.latency_us else None)
      samples
  in
  Stats.mean (Array.of_list xs)

let first_violation deployment =
  match Guardrails.Engine.violations (Guardrails.Deployment.engine deployment) with
  | [] -> None
  | v :: _ -> Some v.Guardrails.Engine.at

(* --smoke shrinks iteration counts / sweep sizes so [make bench-smoke]
   finishes in seconds. Set by main.ml before dispatching experiments. *)
let smoke = ref false

(* Stamped into experiment headers so wall-clock numbers from
   parallel sweeps are interpretable: a wall_speedup of ~1 on a
   1-core host is expected, not a regression. *)
let host_cores = Domain.recommended_domain_count ()

let hr () = print_endline (String.make 78 '-')

let section title =
  hr ();
  Printf.printf "## %s\n" title;
  hr ()

(* ---------- machine-readable output (--json) ---------- *)

module Json = Guardrails.Json

(* Per-monitor telemetry of a deployment, as the gr_trace registry
   renders it: check counts, latency quantiles, cumulative VM cost. *)
let monitors_json deployment =
  match Guardrails.Metrics.to_json (Guardrails.Deployment.metrics deployment) with
  | Json.Obj [ ("monitors", monitors) ] -> monitors
  | other -> other

(* The scale sweeps install N copies of one spec, so their N
   per-monitor rows are identical except the name; collapse that case
   to a single aggregate row carrying a count, which keeps
   BENCH_scale.json readable at monitors=1000 instead of repeating
   the same metrics a thousand times. Any real divergence between
   monitors falls back to the full per-monitor list. *)
let compact_monitors_json deployment =
  match monitors_json deployment with
  | Json.Arr (first :: _ :: _ as l) -> (
    let strip = function
      | Json.Obj fields -> Json.Obj (List.filter (fun (k, _) -> k <> "name") fields)
      | j -> j
    in
    let f0 = strip first in
    if List.for_all (fun m -> Json.equal (strip m) f0) l then
      match f0 with
      | Json.Obj fields ->
        Json.Arr [ Json.Obj (("count", Num (float_of_int (List.length l))) :: fields) ]
      | _ -> Json.Arr l
    else Json.Arr l)
  | other -> other

let json_num x : Json.t = if Float.is_finite x then Num x else Null
let json_int i : Json.t = Num (float_of_int i)

let print_json (j : Json.t) = print_endline (Json.to_string j)
