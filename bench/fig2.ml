(* Figure 2: moving average of I/O latencies, LinnOS without
   guardrails (blue in the paper) vs LinnOS with the false-submit
   guardrail (orange). The two arms are identical until the devices
   age at t=2s; the guardrail arm detects the false-submit spike,
   disables the model (SAVE(ml_enabled, false), Listing 2) and falls
   back to hedged submission, after which its average latency drops
   below the unguarded arm — the paper's qualitative claim. *)

open Gr_util

let run_arm ~with_guardrail ?(tracing = false) () =
  (* The traced arm needs headroom for ~9 simulated seconds of sim
     dispatch + hook + check events; 2^20 slots keeps drops at zero. *)
  let rig = Common.make_fig2_rig ~tracing ~trace_capacity:(1 lsl 20) () in
  if with_guardrail then
    ignore
      (Guardrails.Deployment.install_source_exn rig.deployment Common.listing2_source
        : Guardrails.Engine.handle list);
  Gr_kernel.Kernel.run_until rig.kernel Common.run_until;
  let samples = Gr_workload.Io_driver.samples rig.driver in
  (rig, samples)

(* Alternative formulation of the same property as a P4
   decision-quality rule: the served latency must not exceed the
   hedge baseline's counterfactual cost (published per-I/O by the
   block layer) by more than a margin. *)
let quality_guardrail =
  {|
guardrail quality-vs-hedge {
  trigger: { TIMER(0, 1s) }
  rule: {
    COUNT(io_latency_us, 2s) == 0 ||
    AVG(io_latency_us, 2s) <= AVG(hedge_counterfactual_us, 2s) + 50
  }
  action: {
    REPORT("learned policy lost to the hedge baseline", io_latency_us, hedge_counterfactual_us)
    SAVE(ml_enabled, false)
  }
}
|}

let run_quality_arm () =
  let rig = Common.make_fig2_rig () in
  Guardrails.Deployment.forward_hook_arg rig.deployment ~hook:"blk:io_complete"
    ~arg:"latency_us" ~key:"io_latency_us" ();
  Guardrails.Deployment.forward_hook_arg rig.deployment ~hook:"blk:io_complete"
    ~arg:"hedge_counterfactual_us" ();
  ignore
    (Guardrails.Deployment.install_source_exn rig.deployment quality_guardrail
      : Guardrails.Engine.handle list);
  Gr_kernel.Kernel.run_until rig.kernel Common.run_until;
  rig

let trace_file = "fig2_trace.json"

let phases = [ ("healthy", Time_ns.zero, Common.aging_at);
               ("stale_model", Common.aging_at, Time_ns.sec 3);
               ("post_mitigation", Time_ns.sec 4, Time_ns.sec 8) ]

let json_output ~trigger_at ~quality_at ~(rig_plain : Common.fig2_rig)
    ~(rig_guard : Common.fig2_rig) ~rig_quality ~series_plain ~series_guard ~samples_plain
    ~samples_guard ~trace_events ~trace_dropped : Common.Json.t =
  let open Common.Json in
  let time_opt = function Some at -> Common.json_int at | None -> Null in
  Obj
    [
      ("experiment", Str "fig2");
      ("aging_at_ns", Common.json_int Common.aging_at);
      ("trigger_at_ns", time_opt trigger_at);
      ( "model_enabled_end",
        Obj
          [
            ("plain", Bool (Gr_policy.Linnos.enabled rig_plain.Common.model));
            ("guarded", Bool (Gr_policy.Linnos.enabled rig_guard.Common.model));
          ] );
      ( "false_submits",
        Obj
          [
            ("plain", Common.json_int (Gr_kernel.Blk.false_submits rig_plain.Common.blk));
            ("guarded", Common.json_int (Gr_kernel.Blk.false_submits rig_guard.Common.blk));
          ] );
      ( "series",
        Arr
          (List.map2
             (fun (t, plain) (_, guard) ->
               Obj
                 [
                   ("t_s", Common.json_num t);
                   ("plain_us", Common.json_num plain);
                   ("guarded_us", Common.json_num guard);
                 ])
             series_plain series_guard) );
      ( "phases",
        Arr
          (List.map
             (fun (name, lo, hi) ->
               Obj
                 [
                   ("name", Str name);
                   ("lo_ns", Common.json_int lo);
                   ("hi_ns", Common.json_int hi);
                   ("plain_us", Common.json_num (Common.mean_latency_between ~lo ~hi samples_plain));
                   ( "guarded_us",
                     Common.json_num (Common.mean_latency_between ~lo ~hi samples_guard) );
                 ])
             phases) );
      ( "quality_arm",
        Obj
          [
            ("trigger_at_ns", time_opt quality_at);
            ("model_enabled_end", Bool (Gr_policy.Linnos.enabled rig_quality.Common.model));
          ] );
      ("monitors", Common.monitors_json rig_guard.Common.deployment);
      ( "trace",
        Obj
          [
            ("file", Str trace_file);
            ("events", Common.json_int trace_events);
            ("dropped", Common.json_int trace_dropped);
          ] );
    ]

let run ~json =
  if not json then
    Common.section "Figure 2 — I/O latency moving average, LinnOS vs LinnOS w/ guardrails";
  let rig_plain, samples_plain = run_arm ~with_guardrail:false () in
  (* In --json mode the guarded arm runs traced and is exported as a
     Chrome trace_event file: the sim timeline shows the TIMER checks
     and the firing REPORT/SAVE at the violation. *)
  let rig_guard, samples_guard = run_arm ~with_guardrail:true ~tracing:json () in
  let trigger_at = Common.first_violation rig_guard.deployment in
  let bucket = Time_ns.ms 250 in
  let series_plain = Common.latency_series ~bucket samples_plain in
  let series_guard = Common.latency_series ~bucket samples_guard in
  let rig_quality = run_quality_arm () in
  let quality_at = Common.first_violation rig_quality.deployment in
  if json then begin
    Guardrails.Deployment.write_chrome_trace rig_guard.deployment ~path:trace_file;
    (* The Chrome file merges both channels, so count both. *)
    let tr = Guardrails.Deployment.tracer rig_guard.deployment in
    let events = Guardrails.Trace.events tr and reports = Guardrails.Trace.reports tr in
    Common.print_json
      (json_output ~trigger_at ~quality_at ~rig_plain ~rig_guard ~rig_quality ~series_plain
         ~series_guard ~samples_plain ~samples_guard
         ~trace_events:
           (Guardrails.Trace_sink.length events + Guardrails.Trace_sink.length reports)
         ~trace_dropped:
           (Guardrails.Trace_sink.dropped events + Guardrails.Trace_sink.dropped reports))
  end
  else begin
    (match trigger_at with
    | Some at ->
      Format.printf "false-submit guardrail triggered at %a (aging was at %a)@." Time_ns.pp at
        Time_ns.pp Common.aging_at
    | None -> print_endline "guardrail never triggered (unexpected)");
    Printf.printf "model enabled at end: plain=%b guarded=%b\n"
      (Gr_policy.Linnos.enabled rig_plain.model)
      (Gr_policy.Linnos.enabled rig_guard.model);
    print_endline "";
    print_endline "   t(s)   LinnOS(us)   LinnOS+guardrail(us)";
    List.iter2
      (fun (t, plain) (_, guard) ->
        let marker =
          match trigger_at with
          | Some at
            when t >= Time_ns.to_float_sec at && t -. Time_ns.to_float_sec at < 0.25 ->
            "  <- guardrail triggered, mitigation applied"
          | _ -> ""
        in
        Printf.printf "  %5.2f   %8.1f     %8.1f%s\n" t plain guard marker)
      series_plain series_guard;
    print_endline "";
    List.iter
      (fun (name, lo, hi) ->
        Printf.printf "  %-28s  LinnOS %7.1fus   LinnOS+guardrail %7.1fus\n" name
          (Common.mean_latency_between ~lo ~hi samples_plain)
          (Common.mean_latency_between ~lo ~hi samples_guard))
      phases;
    Printf.printf "\n  false submits: plain=%d guarded=%d\n"
      (Gr_kernel.Blk.false_submits rig_plain.blk)
      (Gr_kernel.Blk.false_submits rig_guard.blk);
    (* Same property, P4 formulation: compare served latency to the
       per-I/O hedge counterfactual instead of the false-submit rate. *)
    match quality_at with
    | Some at ->
      Format.printf
        "\n  P4 formulation (AVG latency vs hedge counterfactual): triggered at %a, model \
         enabled=%b@."
        Time_ns.pp at
        (Gr_policy.Linnos.enabled rig_quality.model)
    | None -> print_endline "\n  P4 formulation never triggered (unexpected)"
  end
