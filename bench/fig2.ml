(* Figure 2: moving average of I/O latencies, LinnOS without
   guardrails (blue in the paper) vs LinnOS with the false-submit
   guardrail (orange). The two arms are identical until the devices
   age at t=2s; the guardrail arm detects the false-submit spike,
   disables the model (SAVE(ml_enabled, false), Listing 2) and falls
   back to hedged submission, after which its average latency drops
   below the unguarded arm — the paper's qualitative claim. *)

open Gr_util

let run_arm ~with_guardrail =
  let rig = Common.make_fig2_rig () in
  if with_guardrail then
    ignore
      (Guardrails.Deployment.install_source_exn rig.deployment Common.listing2_source
        : Guardrails.Engine.handle list);
  Gr_kernel.Kernel.run_until rig.kernel Common.run_until;
  let samples = Gr_workload.Io_driver.samples rig.driver in
  (rig, samples)

(* Alternative formulation of the same property as a P4
   decision-quality rule: the served latency must not exceed the
   hedge baseline's counterfactual cost (published per-I/O by the
   block layer) by more than a margin. *)
let quality_guardrail =
  {|
guardrail quality-vs-hedge {
  trigger: { TIMER(0, 1s) }
  rule: {
    COUNT(io_latency_us, 2s) == 0 ||
    AVG(io_latency_us, 2s) <= AVG(hedge_counterfactual_us, 2s) + 50
  }
  action: {
    REPORT("learned policy lost to the hedge baseline", io_latency_us, hedge_counterfactual_us)
    SAVE(ml_enabled, false)
  }
}
|}

let run_quality_arm () =
  let rig = Common.make_fig2_rig () in
  Guardrails.Deployment.forward_hook_arg rig.deployment ~hook:"blk:io_complete"
    ~arg:"latency_us" ~key:"io_latency_us" ();
  Guardrails.Deployment.forward_hook_arg rig.deployment ~hook:"blk:io_complete"
    ~arg:"hedge_counterfactual_us" ();
  ignore
    (Guardrails.Deployment.install_source_exn rig.deployment quality_guardrail
      : Guardrails.Engine.handle list);
  Gr_kernel.Kernel.run_until rig.kernel Common.run_until;
  rig

let run () =
  Common.section "Figure 2 — I/O latency moving average, LinnOS vs LinnOS w/ guardrails";
  let rig_plain, samples_plain = run_arm ~with_guardrail:false in
  let rig_guard, samples_guard = run_arm ~with_guardrail:true in
  let trigger_at = Common.first_violation rig_guard.deployment in
  (match trigger_at with
  | Some at ->
    Format.printf "false-submit guardrail triggered at %a (aging was at %a)@." Time_ns.pp at
      Time_ns.pp Common.aging_at
  | None -> print_endline "guardrail never triggered (unexpected)");
  Printf.printf "model enabled at end: plain=%b guarded=%b\n"
    (Gr_policy.Linnos.enabled rig_plain.model)
    (Gr_policy.Linnos.enabled rig_guard.model);
  print_endline "";
  print_endline "   t(s)   LinnOS(us)   LinnOS+guardrail(us)";
  let bucket = Time_ns.ms 250 in
  let series_plain = Common.latency_series ~bucket samples_plain in
  let series_guard = Common.latency_series ~bucket samples_guard in
  List.iter2
    (fun (t, plain) (_, guard) ->
      let marker =
        match trigger_at with
        | Some at
          when t >= Time_ns.to_float_sec at && t -. Time_ns.to_float_sec at < 0.25 ->
          "  <- guardrail triggered, mitigation applied"
        | _ -> ""
      in
      Printf.printf "  %5.2f   %8.1f     %8.1f%s\n" t plain guard marker)
    series_plain series_guard;
  print_endline "";
  let phase name lo hi =
    Printf.printf "  %-28s  LinnOS %7.1fus   LinnOS+guardrail %7.1fus\n" name
      (Common.mean_latency_between ~lo ~hi samples_plain)
      (Common.mean_latency_between ~lo ~hi samples_guard)
  in
  phase "healthy regime (0-2s)" Time_ns.zero Common.aging_at;
  phase "stale model (2-3s)" Common.aging_at (Time_ns.sec 3);
  phase "post-mitigation (4-8s)" (Time_ns.sec 4) (Time_ns.sec 8);
  Printf.printf "\n  false submits: plain=%d guarded=%d\n"
    (Gr_kernel.Blk.false_submits rig_plain.blk)
    (Gr_kernel.Blk.false_submits rig_guard.blk);
  (* Same property, P4 formulation: compare served latency to the
     per-I/O hedge counterfactual instead of the false-submit rate. *)
  let rig_quality = run_quality_arm () in
  (match Common.first_violation rig_quality.deployment with
  | Some at ->
    Format.printf
      "\n  P4 formulation (AVG latency vs hedge counterfactual): triggered at %a, model \
       enabled=%b@."
      Time_ns.pp at
      (Gr_policy.Linnos.enabled rig_quality.model)
  | None -> print_endline "\n  P4 formulation never triggered (unexpected)")
